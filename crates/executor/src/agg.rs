//! Chunk-at-a-time group-by aggregation over materialised join results.
//!
//! The paper's queries are `COUNT(*)` blocks, which the executor folds for
//! free out of the result-set length. This module generalises the root
//! aggregate to `SUM` / `MIN` / `MAX` with an optional single-column group
//! key ([`foss_query::AggSpec`]): the join result's tuples are consumed one
//! [`CHUNK_SIZE`] chunk at a time, gathering the projected columns the
//! [`RowSet`] carries (`RowSet::proj`, threaded down from the query by
//! [`Executor::execute_agg`]) and folding them into per-group accumulators.
//!
//! The aggregation is engine-independent: it runs over the final tuple set,
//! which both [`crate::exec::ExecMode`]s (and every worker count) produce
//! byte-identically, and its meter charges accrue in one fixed order — so
//! latency stays bit-identical across engines with the aggregate attached.

use foss_common::{FxHashMap, Result};
use foss_query::{AggFunc, AggSpec, ColRef, Query};

use crate::exec::{Executor, RowSet, WorkMeter, CHUNK_SIZE};

/// One output row of an aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggRow {
    /// The group key (`None` for a global aggregate).
    pub group: Option<i64>,
    /// One value per [`AggSpec::aggs`] entry, in spec order. `COUNT` and
    /// `SUM` are always present (0 on empty input); `MIN`/`MAX` are `None`
    /// when the group saw no rows (only possible for the global group).
    pub values: Vec<Option<i64>>,
}

/// An aggregation result: rows sorted by group key (a single row for global
/// aggregates, present even on empty input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggResult {
    /// Output rows in ascending group-key order.
    pub rows: Vec<AggRow>,
}

struct Acc {
    value: i64,
    seen: bool,
}

/// Fold `rows` into per-group accumulators, charging the meter one chunk at
/// a time (`cpu_tuple` per tuple per projected output column).
pub(crate) fn aggregate(
    exec: &Executor<'_>,
    query: &Query,
    rows: &RowSet,
    meter: &mut WorkMeter,
) -> Result<AggResult> {
    let spec = query.agg.clone().unwrap_or_else(AggSpec::count_star);
    let p = exec.cost.params;
    // Hoist the projected columns the RowSet declares; every aggregation
    // input must travel through that projection list.
    let hoisted: Vec<(ColRef, usize, &[i64])> = rows
        .proj
        .iter()
        .map(|&c| {
            (
                c,
                rows.slot_of(c.rel),
                exec.column_slice(query, c.rel, c.column),
            )
        })
        .collect();
    let find = |c: ColRef| {
        hoisted
            .iter()
            .find(|&&(hc, _, _)| hc == c)
            .map(|&(_, slot, col)| (slot, col))
            .expect("aggregation column missing from the RowSet projection")
    };
    let group = spec.group_by.map(find);
    let inputs: Vec<Option<(usize, &[i64])>> =
        spec.aggs.iter().map(|a| a.input().map(find)).collect();

    let n = rows.len();
    let stride = rows.stride().max(1);
    // One output column per aggregate plus the (implicit) group key.
    let width = (1 + spec.aggs.len()) as f64;
    let fresh = |aggs: &[AggFunc]| -> Vec<Acc> {
        aggs.iter()
            .map(|_| Acc {
                value: 0,
                seen: false,
            })
            .collect()
    };
    let mut index: FxHashMap<i64, usize> = FxHashMap::default();
    let mut groups: Vec<(i64, Vec<Acc>)> = Vec::new();
    if group.is_none() {
        // Global aggregates produce exactly one row, even on empty input.
        index.insert(0, 0);
        groups.push((0, fresh(&spec.aggs)));
    }
    for start in (0..n).step_by(CHUNK_SIZE) {
        let end = (start + CHUNK_SIZE).min(n);
        meter.charge((end - start) as f64 * p.cpu_tuple * width)?;
        for i in start..end {
            let t = &rows.data[i * stride..(i + 1) * stride];
            let key = group.map_or(0, |(slot, col)| col[t[slot] as usize]);
            let gi = match index.get(&key) {
                Some(&gi) => gi,
                None => {
                    index.insert(key, groups.len());
                    groups.push((key, fresh(&spec.aggs)));
                    groups.len() - 1
                }
            };
            let accs = &mut groups[gi].1;
            for (ai, (a, inp)) in spec.aggs.iter().zip(&inputs).enumerate() {
                let acc = &mut accs[ai];
                match a {
                    AggFunc::Count => acc.value = acc.value.wrapping_add(1),
                    AggFunc::Sum(_) => {
                        let (slot, col) = inp.expect("SUM carries an input column");
                        acc.value = acc.value.wrapping_add(col[t[slot] as usize]);
                    }
                    AggFunc::Min(_) => {
                        let (slot, col) = inp.expect("MIN carries an input column");
                        let v = col[t[slot] as usize];
                        if !acc.seen || v < acc.value {
                            acc.value = v;
                        }
                    }
                    AggFunc::Max(_) => {
                        let (slot, col) = inp.expect("MAX carries an input column");
                        let v = col[t[slot] as usize];
                        if !acc.seen || v > acc.value {
                            acc.value = v;
                        }
                    }
                }
                acc.seen = true;
            }
        }
    }
    // Deterministic output order: ascending group key.
    groups.sort_unstable_by_key(|&(k, _)| k);
    let rows = groups
        .into_iter()
        .map(|(k, accs)| AggRow {
            group: spec.group_by.map(|_| k),
            values: accs
                .iter()
                .zip(&spec.aggs)
                .map(|(acc, a)| match a {
                    AggFunc::Count | AggFunc::Sum(_) => Some(acc.value),
                    AggFunc::Min(_) | AggFunc::Max(_) => acc.seen.then_some(acc.value),
                })
                .collect(),
        })
        .collect();
    Ok(AggResult { rows })
}
