//! Latency memoisation.
//!
//! The training loop executes the same (query, plan) pair many times across
//! episodes and AAM retraining rounds; since execution is deterministic, the
//! outcome can be memoised by plan fingerprint. This mirrors the paper's
//! execution buffer semantics: once a plan's latency is known it never needs
//! to be re-executed.

use std::sync::Arc;

use parking_lot::Mutex;

use foss_common::{FossError, FxHashMap, QueryId, Result};
use foss_optimizer::{CostModel, PhysicalPlan};
use foss_query::Query;

use crate::database::Database;
use crate::exec::{ExecOutcome, Executor};

/// What a cached execution looked like.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CachedResult {
    /// Finished within budget.
    Done(ExecOutcome),
    /// Hit the work budget; the recorded value is the budget spent.
    TimedOut {
        /// Budget that was exceeded.
        budget: f64,
    },
}

/// An [`Executor`] front-end with a fingerprint-keyed latency cache and an
/// execution counter (used to report "plans executed" statistics).
pub struct CachingExecutor {
    db: Arc<Database>,
    cost: CostModel,
    cache: Mutex<FxHashMap<(QueryId, u64), CachedResult>>,
    executions: Mutex<u64>,
}

impl CachingExecutor {
    /// Wrap a database + cost model.
    pub fn new(db: Arc<Database>, cost: CostModel) -> Self {
        Self {
            db,
            cost,
            cache: Mutex::new(FxHashMap::default()),
            executions: Mutex::new(0),
        }
    }

    /// Execute (or recall) `plan` under an optional work budget.
    ///
    /// A cached `Done` outcome is returned regardless of the budget (its
    /// latency is exact, the caller can compare against any threshold). A
    /// cached `TimedOut` is only reused when the new budget is not larger
    /// than the budget that failed; otherwise the plan is re-executed.
    pub fn execute(
        &self,
        query: &Query,
        plan: &PhysicalPlan,
        budget: Option<f64>,
    ) -> Result<ExecOutcome> {
        let key = (query.id, plan.fingerprint());
        if let Some(cached) = self.cache.lock().get(&key).copied() {
            match cached {
                CachedResult::Done(out) => {
                    if let Some(b) = budget {
                        if out.latency > b {
                            return Err(FossError::Timeout {
                                spent: out.latency as u64,
                                budget: b as u64,
                            });
                        }
                    }
                    return Ok(out);
                }
                CachedResult::TimedOut { budget: old } => {
                    if budget.is_some_and(|b| b <= old) {
                        return Err(FossError::Timeout { spent: old as u64, budget: old as u64 });
                    }
                    // Larger (or no) budget: fall through and re-execute.
                }
            }
        }
        *self.executions.lock() += 1;
        let exec = Executor::new(&self.db, self.cost);
        match exec.execute(query, plan, budget) {
            Ok(out) => {
                self.cache.lock().insert(key, CachedResult::Done(out));
                Ok(out)
            }
            Err(e @ FossError::Timeout { .. }) => {
                if let Some(b) = budget {
                    self.cache.lock().insert(key, CachedResult::TimedOut { budget: b });
                }
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Number of *real* executions performed (cache misses).
    pub fn executions(&self) -> u64 {
        *self.executions.lock()
    }

    /// Number of cached entries.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().len()
    }

    /// Drop all cached outcomes (used between experiment repetitions).
    pub fn clear(&self) {
        self.cache.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_catalog::{ColumnDef, Schema, TableDef};
    use foss_common::QueryId;
    use foss_optimizer::{CardinalityEstimator, TraditionalOptimizer};
    use foss_query::QueryBuilder;
    use foss_storage::{Column, Table};
    use std::sync::Arc;

    fn setup() -> (Database, TraditionalOptimizer, Query) {
        let mut schema = Schema::new();
        schema
            .add_table(TableDef {
                name: "a".into(),
                columns: vec![ColumnDef::indexed("id")],
            })
            .unwrap();
        schema
            .add_table(TableDef {
                name: "b".into(),
                columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("a_id")],
            })
            .unwrap();
        let schema = Arc::new(schema);
        let a = Table::new("a", vec![("id".into(), Column::new((0..50).collect()))]).unwrap();
        let b = Table::new(
            "b",
            vec![
                ("id".into(), Column::new((0..200).collect())),
                ("a_id".into(), Column::new((0..200).map(|i| i % 50).collect())),
            ],
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![a, b], 8).unwrap();
        let opt = TraditionalOptimizer::new(
            schema.clone(),
            CardinalityEstimator::new(db.stats_vec()),
            CostModel::default(),
        );
        let mut qb = QueryBuilder::new(QueryId::new(0), 1);
        let ra = qb.relation(schema.table_id("a").unwrap(), "a");
        let rb = qb.relation(schema.table_id("b").unwrap(), "b");
        qb.join(ra, 0, rb, 1);
        let q = qb.build(&schema).unwrap();
        (db, opt, q)
    }

    #[test]
    fn second_execution_hits_cache() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        let a = cx.execute(&q, &plan, None).unwrap();
        let b = cx.execute(&q, &plan, None).unwrap();
        assert_eq!(a, b);
        assert_eq!(cx.executions(), 1);
        assert_eq!(cx.cache_len(), 1);
    }

    #[test]
    fn cached_done_respects_tighter_budget() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        let out = cx.execute(&q, &plan, None).unwrap();
        let err = cx.execute(&q, &plan, Some(out.latency / 2.0)).unwrap_err();
        assert!(matches!(err, FossError::Timeout { .. }));
        assert_eq!(cx.executions(), 1, "timeout answered from cache");
    }

    #[test]
    fn timed_out_entry_retried_with_larger_budget() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        let full = Executor::new(&db, *opt.cost_model())
            .execute(&q, &plan, None)
            .unwrap();
        assert!(cx.execute(&q, &plan, Some(full.latency / 10.0)).is_err());
        assert_eq!(cx.executions(), 1);
        // Same tight budget: cache answers, no new execution.
        assert!(cx.execute(&q, &plan, Some(full.latency / 20.0)).is_err());
        assert_eq!(cx.executions(), 1);
        // Larger budget: re-executes and succeeds.
        let out = cx.execute(&q, &plan, Some(full.latency * 2.0)).unwrap();
        assert_eq!(out, full);
        assert_eq!(cx.executions(), 2);
    }

    #[test]
    fn clear_resets_cache() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        cx.execute(&q, &plan, None).unwrap();
        cx.clear();
        assert_eq!(cx.cache_len(), 0);
        cx.execute(&q, &plan, None).unwrap();
        assert_eq!(cx.executions(), 2);
    }
}
