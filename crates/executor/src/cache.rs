//! Latency memoisation.
//!
//! The training loop executes the same (query, plan) pair many times across
//! episodes and AAM retraining rounds; since execution is deterministic, the
//! outcome can be memoised by plan fingerprint. This mirrors the paper's
//! execution buffer semantics: once a plan's latency is known it never needs
//! to be re-executed.
//!
//! Bounded caches (the serving-style configuration) support two eviction
//! policies: **FIFO** (insertion order, the original behaviour) and **LRU**
//! (least-recently-used, implemented with lazy deletion so hits stay O(1)
//! amortised). On skewed plan streams LRU keeps the hot set resident where
//! FIFO ages it out — see the hit-rate test below and the `cache/eviction`
//! micro-benchmark.

use std::sync::Arc;

use foss_common::sync::atomic::{AtomicU64, Ordering};
use foss_common::sync::{Condvar, Mutex, MutexGuard};

use foss_common::{FaultPlan, FaultSite, FossError, FxHashMap, FxHashSet, QueryId, Result};
use foss_optimizer::{CostModel, PhysicalPlan};
use foss_query::Query;

use crate::database::Database;
use crate::exec::{ExecMode, ExecOutcome, Executor};

/// What a cached execution looked like.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CachedResult {
    /// Finished within budget.
    Done(ExecOutcome),
    /// Hit the work budget.
    TimedOut {
        /// Budget that was exceeded.
        budget: f64,
        /// Work units the failed run actually performed before aborting
        /// (≈ budget + one chunk's charge — the metered convention), taken
        /// verbatim from the run's [`FossError::Timeout`] so replaying the
        /// cached error under the same budget is bit-identical.
        spent: u64,
    },
}

/// One consistent snapshot of a [`CachingExecutor`]'s counters.
///
/// `executions`, `hits` and `evictions` are lifetime totals;
/// [`CachingExecutor::clear`] resets only `entries`. The serving metrics
/// registry consumes this struct wholesale, so every counter the cache
/// maintains travels together instead of through ad-hoc accessors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Real executions performed (cache misses).
    pub executions: u64,
    /// Lookups answered from the cache (including cached timeouts).
    pub hits: u64,
    /// Entries evicted to honour a capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.executions;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas since `baseline` (a stats snapshot taken earlier on
    /// the same executor). `entries` is a gauge, not a counter, and stays
    /// absolute. Lets a consumer report only its own traffic on a shared
    /// executor — e.g. the serving metrics exclude training-time activity.
    pub fn since(&self, baseline: &CacheStats) -> CacheStats {
        CacheStats {
            executions: self.executions.saturating_sub(baseline.executions),
            hits: self.hits.saturating_sub(baseline.hits),
            evictions: self.evictions.saturating_sub(baseline.evictions),
            entries: self.entries,
        }
    }
}

/// Eviction policy for bounded caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict in insertion order.
    #[default]
    Fifo,
    /// Evict the least-recently-used entry (hits refresh recency).
    Lru,
}

type CacheKey = (QueryId, u64);

#[derive(Debug, Clone, Copy)]
struct Entry {
    value: CachedResult,
    /// Clock tick of this entry's live position in `order`; older pushes of
    /// the same key are stale and skipped at eviction time.
    stamp: u64,
}

/// Cache map plus eviction bookkeeping behind one lock so lookup, insert and
/// eviction stay atomic.
#[derive(Debug, Default)]
struct CacheState {
    map: FxHashMap<CacheKey, Entry>,
    /// Eviction queue, oldest candidate first; only consulted when bounded.
    /// Under LRU a key may appear several times (lazy deletion): only the
    /// occurrence whose stamp matches the map entry is live.
    order: std::collections::VecDeque<(CacheKey, u64)>,
    clock: u64,
    /// `None` = unbounded (training-loop default).
    capacity: Option<usize>,
    policy: EvictionPolicy,
    evictions: u64,
}

impl CacheState {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Refresh `key`'s recency (LRU hits only).
    fn touch(&mut self, key: CacheKey) {
        if self.capacity.is_none() || self.policy != EvictionPolicy::Lru {
            return;
        }
        let stamp = self.tick();
        if let Some(entry) = self.map.get_mut(&key) {
            entry.stamp = stamp;
            self.order.push_back((key, stamp));
            self.compact();
        }
    }

    /// Drop stale queue entries once lazy deletion has bloated the queue
    /// beyond a small multiple of capacity, keeping memory bounded.
    fn compact(&mut self) {
        let Some(cap) = self.capacity else { return };
        if self.order.len() > cap.saturating_mul(4).max(64) {
            let map = &self.map;
            self.order
                .retain(|&(k, s)| map.get(&k).is_some_and(|e| e.stamp == s));
        }
    }

    fn insert(&mut self, key: CacheKey, value: CachedResult) {
        if let Some(entry) = self.map.get_mut(&key) {
            // Overwrite (e.g. a timed-out entry upgraded after a re-run with
            // a larger budget). FIFO keeps the original queue position; LRU
            // counts the re-execution as a use and refreshes recency.
            entry.value = value;
            if self.policy == EvictionPolicy::Lru {
                self.touch(key);
            }
            return;
        }
        let stamp = self.tick();
        self.map.insert(key, Entry { value, stamp });
        if let Some(cap) = self.capacity {
            self.order.push_back((key, stamp));
            // Every bounded fresh insert pushed to `order`, so the deque
            // can't run dry while the map is over capacity.
            while self.map.len() > cap {
                let (oldest, s) = self.order.pop_front().expect("queue out of sync with map");
                match self.map.get(&oldest) {
                    // Live occurrence: evict.
                    Some(e) if e.stamp == s => {
                        self.map.remove(&oldest);
                        self.evictions += 1;
                    }
                    // Stale occurrence superseded by a later touch: skip.
                    _ => {}
                }
            }
        }
    }
}

/// An [`Executor`] front-end with a fingerprint-keyed latency cache and an
/// execution counter (used to report "plans executed" statistics).
///
/// By default the cache is unbounded — the training loop revisits the same
/// (query, plan) pairs across episodes and wants every latency memoised.
/// [`CachingExecutor::with_capacity`] bounds it (FIFO), and
/// [`CachingExecutor::with_capacity_policy`] additionally selects the
/// eviction policy, for serving-style workloads where the plan stream is
/// unbounded.
pub struct CachingExecutor {
    db: Arc<Database>,
    cost: CostModel,
    mode: ExecMode,
    cache: Mutex<CacheState>,
    /// Keys currently being executed by some thread (single-flight): a
    /// concurrent miss on an in-flight key waits on `inflight_cv` for the
    /// executing thread to fill the cache instead of re-executing.
    inflight: Mutex<FxHashSet<CacheKey>>,
    inflight_cv: Condvar,
    executions: AtomicU64,
    hits: AtomicU64,
    /// Deterministic fault hooks ([`FaultSite::CacheError`] /
    /// [`FaultSite::ExecSlow`]); `None` in production, where the hook is a
    /// single branch on the option.
    faults: Option<Arc<FaultPlan>>,
}

/// RAII claim on an in-flight key: released (with waiters woken) on drop, so
/// an unwinding execution can't strand the key and deadlock later callers.
struct InflightClaim<'a> {
    cx: &'a CachingExecutor,
    key: CacheKey,
}

impl Drop for InflightClaim<'_> {
    fn drop(&mut self) {
        self.cx.inflight.lock().remove(&self.key);
        self.cx.inflight_cv.notify_all();
    }
}

impl CachingExecutor {
    /// Wrap a database + cost model with an unbounded cache over the default
    /// (chunked) engine.
    pub fn new(db: Arc<Database>, cost: CostModel) -> Self {
        Self::with_mode(db, cost, ExecMode::default())
    }

    /// Like [`CachingExecutor::new`] with an explicit executor engine.
    pub fn with_mode(db: Arc<Database>, cost: CostModel, mode: ExecMode) -> Self {
        Self {
            db,
            cost,
            mode,
            cache: Mutex::new(CacheState::default()),
            inflight: Mutex::new(FxHashSet::default()),
            inflight_cv: Condvar::new(),
            executions: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            faults: None,
        }
    }

    /// Like [`CachingExecutor::new`], but the cache holds at most `capacity`
    /// outcomes; inserting beyond that evicts FIFO-oldest entries first.
    ///
    /// # Panics
    /// If `capacity == 0` — such a cache would evict every entry on insert
    /// and silently defeat memoisation; use [`CachingExecutor::new`] for an
    /// unbounded cache instead.
    pub fn with_capacity(db: Arc<Database>, cost: CostModel, capacity: usize) -> Self {
        Self::with_capacity_policy(db, cost, capacity, EvictionPolicy::Fifo)
    }

    /// Bounded cache with an explicit [`EvictionPolicy`].
    ///
    /// # Panics
    /// If `capacity == 0` (see [`CachingExecutor::with_capacity`]).
    pub fn with_capacity_policy(
        db: Arc<Database>,
        cost: CostModel,
        capacity: usize,
        policy: EvictionPolicy,
    ) -> Self {
        assert!(
            capacity > 0,
            "cache capacity must be positive (use `new` for unbounded)"
        );
        Self {
            db,
            cost,
            mode: ExecMode::default(),
            cache: Mutex::new(CacheState {
                capacity: Some(capacity),
                policy,
                ..CacheState::default()
            }),
            inflight: Mutex::new(FxHashSet::default()),
            inflight_cv: Condvar::new(),
            executions: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            faults: None,
        }
    }

    /// Replace the executor engine (chainable), so the cache-shape
    /// constructors compose with the engine choice — e.g. a bounded LRU
    /// cache over the scalar reference:
    /// `CachingExecutor::with_capacity_policy(db, cost, 16, EvictionPolicy::Lru)
    ///     .with_exec_mode(ExecMode::Scalar)`.
    #[must_use]
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// The executor engine misses run on.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Attach a deterministic fault plan (chainable). Each `execute` call
    /// then consults [`FaultSite::CacheError`] (fail the lookup with a
    /// transient error before any work) and [`FaultSite::ExecSlow`]
    /// (wall-clock sleep of the rule's `param` µs — metered work-unit
    /// latencies are deliberately untouched so cached outcomes stay
    /// bit-identical). Chaos harnesses use this; production never attaches
    /// a plan and pays one `Option` branch.
    #[must_use]
    pub fn with_fault_plan(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Answer `key` from the cache, or `None` on a miss (including a cached
    /// timeout that a larger budget may now beat — that must re-execute).
    fn lookup(&self, key: CacheKey, budget: Option<f64>) -> Option<Result<ExecOutcome>> {
        let cached = {
            let mut cache = self.cache.lock();
            let cached = cache.map.get(&key).map(|e| e.value);
            if cached.is_some() {
                cache.touch(key);
            }
            cached
        }?;
        match cached {
            CachedResult::Done(out) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(b) = budget {
                    if out.latency > b {
                        // A real metered run stops just past the budget, not
                        // at the full latency; the exact abort point isn't
                        // recoverable from the cache, so report the budget
                        // itself (the metered value truncates to the same
                        // whole work units in all but pathological cases).
                        return Some(Err(FossError::Timeout {
                            spent: b as u64,
                            budget: b as u64,
                        }));
                    }
                }
                Some(Ok(out))
            }
            CachedResult::TimedOut { budget: old, spent } => {
                if let Some(b) = budget.filter(|&b| b <= old) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    // Same budget: replay the recorded error bit-for-bit.
                    // Tighter budget: the abort point isn't recoverable, so
                    // mirror the metered convention as in the Done path.
                    let spent = if b == old { spent } else { b as u64 };
                    return Some(Err(FossError::Timeout {
                        spent,
                        budget: b as u64,
                    }));
                }
                // Larger (or no) budget: re-execute.
                None
            }
        }
    }

    /// Execute (or recall) `plan` under an optional work budget.
    ///
    /// A cached `Done` outcome is returned regardless of the budget (its
    /// latency is exact, the caller can compare against any threshold). A
    /// cached `TimedOut` is only reused when the new budget is not larger
    /// than the budget that failed; otherwise the plan is re-executed.
    ///
    /// Concurrent misses on the same key are single-flighted: exactly one
    /// thread executes, the rest wait for its memoised outcome, so a stampede
    /// of identical submits costs one execution (and counts one miss).
    pub fn execute(
        &self,
        query: &Query,
        plan: &PhysicalPlan,
        budget: Option<f64>,
    ) -> Result<ExecOutcome> {
        self.execute_tiered(query, plan, budget, None)
    }

    /// [`CachingExecutor::execute`] with an optional tier-2 pipeline.
    ///
    /// When `pipeline` is `Some`, a cache miss runs the fused pipeline
    /// instead of the interpreter. The fused tier charges the identical
    /// work-unit sequence (see [`crate::fused`]), so cache entries, timeout
    /// records and recorded latencies are bit-identical either way — the
    /// tier is invisible to every consumer of this cache. The caller is
    /// responsible for only passing a pipeline compiled for this exact
    /// `(query, plan)` shape (the service keys its tier cell on
    /// [`crate::fused::shape_key`]).
    pub fn execute_tiered(
        &self,
        query: &Query,
        plan: &PhysicalPlan,
        budget: Option<f64>,
        pipeline: Option<&crate::fused::FusedPipeline>,
    ) -> Result<ExecOutcome> {
        if let Some(faults) = &self.faults {
            if faults.roll(FaultSite::CacheError).is_some() {
                return Err(FossError::Transient(
                    "injected cache-layer fault".to_string(),
                ));
            }
            if let Some(rule) = faults.roll(FaultSite::ExecSlow) {
                std::thread::sleep(std::time::Duration::from_micros(rule.param as u64));
            }
        }
        let key = (query.id, plan.fingerprint());
        let claim = loop {
            if let Some(res) = self.lookup(key, budget) {
                return res;
            }
            // Miss: claim the key, or wait for whoever holds the claim and
            // then re-check the cache they were filling.
            let mut inflight = self.inflight.lock();
            if !inflight.contains(&key) {
                inflight.insert(key);
                break InflightClaim { cx: self, key };
            }
            let guard: MutexGuard<'_, FxHashSet<CacheKey>> = self.inflight_cv.wait(inflight);
            drop(guard);
        };
        // Double-check under the claim: a racer may have filled the cache
        // between our lookup and the claim.
        if let Some(res) = self.lookup(key, budget) {
            return res;
        }
        self.executions.fetch_add(1, Ordering::Relaxed);
        let outcome = match pipeline {
            Some(fused) => fused.execute(&self.db, self.cost, query, budget),
            None => {
                Executor::with_mode(&self.db, self.cost, self.mode).execute(query, plan, budget)
            }
        };
        let result = match outcome {
            Ok(out) => {
                self.cache.lock().insert(key, CachedResult::Done(out));
                Ok(out)
            }
            Err(e @ FossError::Timeout { spent, .. }) => {
                if let Some(b) = budget {
                    self.cache
                        .lock()
                        .insert(key, CachedResult::TimedOut { budget: b, spent });
                }
                Err(e)
            }
            Err(e) => Err(e),
        };
        drop(claim);
        result
    }

    /// Pre-single-flight `execute` (the PR 6 behaviour before the in-flight
    /// claim was introduced): lookup → execute → insert with **no** claim on
    /// the key, so two concurrent misses on the same key both execute.
    ///
    /// Kept only as a mutation target for the model checker — the
    /// `foss_analysis` regression suite asserts the checker *finds* the
    /// double-execution interleaving in this version, proving the suite would
    /// have caught the original bug. Never compiled into production builds.
    #[cfg(feature = "unflighted-cache")]
    pub fn execute_unflighted(
        &self,
        query: &Query,
        plan: &PhysicalPlan,
        budget: Option<f64>,
    ) -> Result<ExecOutcome> {
        let key = (query.id, plan.fingerprint());
        if let Some(res) = self.lookup(key, budget) {
            return res;
        }
        self.executions.fetch_add(1, Ordering::Relaxed);
        let exec = Executor::with_mode(&self.db, self.cost, self.mode);
        match exec.execute(query, plan, budget) {
            Ok(out) => {
                self.cache.lock().insert(key, CachedResult::Done(out));
                Ok(out)
            }
            Err(e @ FossError::Timeout { spent, .. }) => {
                if let Some(b) = budget {
                    self.cache
                        .lock()
                        .insert(key, CachedResult::TimedOut { budget: b, spent });
                }
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Number of *real* executions performed (cache misses) over the
    /// executor's lifetime; [`CachingExecutor::clear`] does not reset it.
    /// Shorthand for [`CacheStats::executions`] via [`CachingExecutor::stats`].
    pub fn executions(&self) -> u64 {
        self.executions.load(Ordering::Relaxed)
    }

    /// One consistent snapshot of every cache counter (executions, hits,
    /// evictions, resident entries) — the single source the serving metrics
    /// registry and the tests consume.
    pub fn stats(&self) -> CacheStats {
        let cache = self.cache.lock();
        CacheStats {
            executions: self.executions.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            evictions: cache.evictions,
            entries: cache.map.len(),
        }
    }

    /// Drop all cached outcomes (used between experiment repetitions).
    /// The `executions`/`evictions` counters are lifetime totals and are
    /// deliberately left untouched.
    pub fn clear(&self) {
        let mut cache = self.cache.lock();
        cache.map.clear();
        cache.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_catalog::{ColumnDef, Schema, TableDef};
    use foss_common::QueryId;
    use foss_optimizer::{CardinalityEstimator, TraditionalOptimizer};
    use foss_query::{Predicate, QueryBuilder};
    use foss_storage::{Column, Table};
    use std::sync::Arc;

    fn setup() -> (Database, TraditionalOptimizer, Query) {
        let mut schema = Schema::new();
        schema
            .add_table(TableDef {
                name: "a".into(),
                columns: vec![ColumnDef::indexed("id")],
            })
            .unwrap();
        schema
            .add_table(TableDef {
                name: "b".into(),
                columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("a_id")],
            })
            .unwrap();
        let schema = Arc::new(schema);
        let a = Table::new("a", vec![("id".into(), Column::new((0..50).collect()))]).unwrap();
        let b = Table::new(
            "b",
            vec![
                ("id".into(), Column::new((0..200).collect())),
                (
                    "a_id".into(),
                    Column::new((0..200).map(|i| i % 50).collect()),
                ),
            ],
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![a, b], 8).unwrap();
        let opt = TraditionalOptimizer::new(
            schema.clone(),
            CardinalityEstimator::new(db.stats_vec()),
            CostModel::default(),
        );
        let mut qb = QueryBuilder::new(QueryId::new(0), 1);
        let ra = qb.relation(schema.table_id("a").unwrap(), "a");
        let rb = qb.relation(schema.table_id("b").unwrap(), "b");
        qb.join(ra, 0, rb, 1);
        let q = qb.build(&schema).unwrap();
        (db, opt, q)
    }

    /// Distinct single-relation queries over the same tiny table: distinct
    /// cache keys with near-zero execution cost, for policy tests.
    fn distinct_queries(db: &Database, n: usize) -> (Vec<Query>, PhysicalPlan) {
        use foss_optimizer::{AccessPath, PlanNode};
        let schema = db.schema().clone();
        let queries = (0..n)
            .map(|i| {
                let mut qb = QueryBuilder::new(QueryId::new(1000 + i), 1);
                let ra = qb.relation(schema.table_id("a").unwrap(), "a");
                qb.predicate(
                    ra,
                    Predicate::Eq {
                        column: 0,
                        value: i as i64 % 50,
                    },
                );
                qb.build(&schema).unwrap()
            })
            .collect();
        let plan = PhysicalPlan {
            root: PlanNode::Scan {
                relation: 0,
                access: AccessPath::SeqScan,
                est_rows: 1.0,
                est_cost: 1.0,
            },
        };
        (queries, plan)
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let (db, opt, _) = setup();
        let _ = CachingExecutor::with_capacity(Arc::new(db), *opt.cost_model(), 0);
    }

    #[test]
    fn second_execution_hits_cache() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        let a = cx.execute(&q, &plan, None).unwrap();
        let b = cx.execute(&q, &plan, None).unwrap();
        assert_eq!(a, b);
        let stats = cx.stats();
        assert_eq!(stats.executions, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_since_reports_only_new_traffic() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        cx.execute(&q, &plan, None).unwrap(); // "training" miss
        let baseline = cx.stats();
        cx.execute(&q, &plan, None).unwrap(); // "serving" hit
        cx.execute(&q, &plan, None).unwrap();
        let delta = cx.stats().since(&baseline);
        assert_eq!(delta.executions, 0);
        assert_eq!(delta.hits, 2);
        assert_eq!(delta.entries, 1, "entries is a gauge, not a delta");
        assert_eq!(delta.hit_rate(), 1.0);
    }

    #[test]
    fn cached_done_respects_tighter_budget() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        let out = cx.execute(&q, &plan, None).unwrap();
        let err = cx.execute(&q, &plan, Some(out.latency / 2.0)).unwrap_err();
        assert!(matches!(err, FossError::Timeout { .. }));
        assert_eq!(cx.executions(), 1, "timeout answered from cache");
    }

    #[test]
    fn timed_out_entry_retried_with_larger_budget() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        let full = Executor::new(&db, *opt.cost_model())
            .execute(&q, &plan, None)
            .unwrap();
        assert!(cx.execute(&q, &plan, Some(full.latency / 10.0)).is_err());
        assert_eq!(cx.executions(), 1);
        // Same tight budget: cache answers, no new execution.
        assert!(cx.execute(&q, &plan, Some(full.latency / 20.0)).is_err());
        assert_eq!(cx.executions(), 1);
        // Larger budget: re-executes and succeeds.
        let out = cx.execute(&q, &plan, Some(full.latency * 2.0)).unwrap();
        assert_eq!(out, full);
        assert_eq!(cx.executions(), 2);
    }

    #[test]
    fn bounded_cache_evicts_oldest_first() {
        let (db, opt, q) = setup();
        let expert = opt.optimize(&q).unwrap();
        // Three distinct plans: the expert and its two method variants.
        let icp = expert.extract_icp().unwrap();
        let mut plans = vec![expert];
        for j in 1..=2 {
            let mut cand = icp.clone();
            cand.override_method(1, (icp.methods[0].index() + j) % 3 + 1)
                .unwrap_or(());
            plans.push(opt.optimize_with_hint(&q, &cand).unwrap());
        }
        plans.dedup_by_key(|p| p.fingerprint());
        assert!(plans.len() >= 2, "need distinct plans to exercise eviction");

        let cx = CachingExecutor::with_capacity(Arc::new(db.clone()), *opt.cost_model(), 1);
        cx.execute(&q, &plans[0], None).unwrap();
        let s = cx.stats();
        assert_eq!((s.entries, s.evictions), (1, 0));
        // Second distinct plan evicts the first.
        cx.execute(&q, &plans[1], None).unwrap();
        let s = cx.stats();
        assert_eq!((s.entries, s.evictions), (1, 1));
        // Re-running the evicted plan is a miss again.
        cx.execute(&q, &plans[0], None).unwrap();
        let s = cx.stats();
        assert_eq!(s.executions, 3);
        assert_eq!(s.evictions, 2);
    }

    #[test]
    fn lru_keeps_recently_used_entries() {
        let (db, opt, _) = setup();
        let (queries, plan) = distinct_queries(&db, 3);
        let cx = CachingExecutor::with_capacity_policy(
            Arc::new(db.clone()),
            *opt.cost_model(),
            2,
            EvictionPolicy::Lru,
        );
        cx.execute(&queries[0], &plan, None).unwrap(); // cache: [0]
        cx.execute(&queries[1], &plan, None).unwrap(); // cache: [0, 1]
        cx.execute(&queries[0], &plan, None).unwrap(); // touch 0 → LRU is 1
        cx.execute(&queries[2], &plan, None).unwrap(); // evicts 1, not 0
        assert_eq!(cx.stats().evictions, 1);
        cx.execute(&queries[0], &plan, None).unwrap();
        assert_eq!(
            cx.stats().executions,
            3,
            "query 0 must still be cached under LRU"
        );
        cx.execute(&queries[1], &plan, None).unwrap();
        assert_eq!(cx.stats().executions, 4, "query 1 was the LRU victim");
    }

    /// On a skewed trace (a small hot set re-referenced between a stream of
    /// cold singletons) LRU keeps the hot set resident; FIFO ages it out and
    /// re-misses it. This is the policy's reason to exist.
    #[test]
    fn lru_beats_fifo_hit_rate_on_skewed_trace() {
        let (db, opt, _) = setup();
        let db = Arc::new(db);
        let hot = 4usize;
        let cold = 120usize;
        let (queries, plan) = distinct_queries(&db, hot + cold);
        let mut trace = Vec::new();
        for i in 0..cold {
            trace.push(i % hot); // hot keys recur throughout…
            trace.push(hot + i); // …interleaved with one-shot cold keys
        }
        let mut misses = Vec::new();
        for policy in [EvictionPolicy::Fifo, EvictionPolicy::Lru] {
            let cx =
                CachingExecutor::with_capacity_policy(db.clone(), *opt.cost_model(), 8, policy);
            for &qi in &trace {
                cx.execute(&queries[qi], &plan, None).unwrap();
            }
            let s = cx.stats();
            assert_eq!(s.hits + s.executions, trace.len() as u64);
            misses.push(s.executions);
        }
        let (fifo, lru) = (misses[0], misses[1]);
        // LRU's floor: each distinct key misses once.
        assert_eq!(
            lru,
            (hot + cold) as u64,
            "LRU should only miss compulsory entries"
        );
        assert!(
            fifo > lru + 20,
            "FIFO should re-miss the hot set repeatedly (fifo={fifo} lru={lru})"
        );
    }

    #[test]
    fn bounded_cache_composes_with_scalar_engine() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let chunked = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        let cx = CachingExecutor::with_capacity_policy(
            Arc::new(db.clone()),
            *opt.cost_model(),
            4,
            EvictionPolicy::Lru,
        )
        .with_exec_mode(ExecMode::Scalar);
        assert_eq!(cx.mode(), ExecMode::Scalar);
        // The engines are bit-identical, so a scalar miss fills the cache
        // with exactly what the chunked engine would have produced.
        assert_eq!(
            cx.execute(&q, &plan, None).unwrap(),
            chunked.execute(&q, &plan, None).unwrap()
        );
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        for _ in 0..10 {
            cx.execute(&q, &plan, None).unwrap();
        }
        let s = cx.stats();
        assert_eq!(s.executions, 1);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.hits, 9);
    }

    #[test]
    fn timed_out_upgrade_keeps_cache_bounded() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let full = Executor::new(&db, *opt.cost_model())
            .execute(&q, &plan, None)
            .unwrap();
        let cx = CachingExecutor::with_capacity(Arc::new(db.clone()), *opt.cost_model(), 2);
        // Time out once, then upgrade the same key with a larger budget: the
        // overwrite must not double-count the key in the FIFO.
        assert!(cx.execute(&q, &plan, Some(full.latency / 10.0)).is_err());
        cx.execute(&q, &plan, None).unwrap();
        let s = cx.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn lazy_deletion_queue_stays_bounded() {
        let (db, opt, _) = setup();
        let (queries, plan) = distinct_queries(&db, 4);
        let cx = CachingExecutor::with_capacity_policy(
            Arc::new(db.clone()),
            *opt.cost_model(),
            4,
            EvictionPolicy::Lru,
        );
        // Thousands of touches on resident keys must not grow memory without
        // bound: compaction trims stale queue entries.
        for round in 0..2000 {
            cx.execute(&queries[round % 4], &plan, None).unwrap();
        }
        let s = cx.stats();
        assert_eq!(s.executions, 4);
        assert_eq!(s.evictions, 0);
        let queue_len = cx.cache.lock().order.len();
        assert!(
            queue_len <= 64 + 4,
            "lazy queue grew unbounded: {queue_len}"
        );
    }

    /// The miss-stampede regression: N threads submitting the same keys
    /// concurrently must produce exactly one real execution per distinct
    /// key — the single-flight claim makes every racer wait for the first
    /// thread's memoised outcome instead of re-executing.
    #[test]
    fn concurrent_submits_single_flight_to_one_execution_per_key() {
        use std::sync::Barrier;
        let (db, opt, _) = setup();
        let (queries, plan) = distinct_queries(&db, 4);
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        let threads = 8;
        let barrier = Barrier::new(threads);
        let outcomes: Vec<Vec<ExecOutcome>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let cx = &cx;
                    let queries = &queries;
                    let plan = &plan;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        // Offset start positions so every key sees
                        // concurrent first-misses from several threads.
                        (0..3 * queries.len())
                            .map(|i| {
                                cx.execute(&queries[(t + i) % queries.len()], plan, None)
                                    .unwrap()
                            })
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let s = cx.stats();
        assert_eq!(
            s.executions,
            queries.len() as u64,
            "each distinct key must execute exactly once"
        );
        assert_eq!(
            s.hits + s.executions,
            (threads * 3 * queries.len()) as u64,
            "every lookup is either the one miss or a hit"
        );
        // Determinism: every thread saw the identical outcome per key.
        let mut reference: Vec<Option<ExecOutcome>> = vec![None; queries.len()];
        for (t, per_thread) in outcomes.iter().enumerate() {
            assert_eq!(per_thread.len(), 3 * queries.len());
            for (i, out) in per_thread.iter().enumerate() {
                let qi = (t + i) % queries.len();
                match reference[qi] {
                    None => reference[qi] = Some(*out),
                    Some(want) => {
                        assert_eq!(*out, want, "outcome for key {qi} differs across threads")
                    }
                }
            }
        }
    }

    /// Satellite check: a cache-served timeout must be indistinguishable —
    /// bit for bit — from the metered run that produced it.
    #[test]
    fn cached_timeout_error_matches_metered_run_bit_for_bit() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let full = Executor::new(&db, *opt.cost_model())
            .execute(&q, &plan, None)
            .unwrap();
        let budget = full.latency / 3.0;
        let metered = Executor::new(&db, *opt.cost_model())
            .execute(&q, &plan, Some(budget))
            .unwrap_err();
        let FossError::Timeout {
            spent: m_spent,
            budget: m_budget,
        } = metered
        else {
            panic!("expected a timeout");
        };
        // The metered convention: the run stops just past the budget, not
        // at the plan's full latency.
        assert!(m_spent as f64 <= full.latency);
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        for round in 0..2 {
            // Round 0 executes and records; round 1 is served from cache.
            let err = cx.execute(&q, &plan, Some(budget)).unwrap_err();
            let FossError::Timeout { spent, budget: b } = err else {
                panic!("expected a timeout");
            };
            assert_eq!((spent, b), (m_spent, m_budget), "round {round}");
        }
        assert_eq!(cx.executions(), 1, "second timeout came from the cache");
    }

    /// Cached `Done` outcomes answered under a tighter budget mirror the
    /// metered convention too: `spent` reports the budget, not the full
    /// latency of the completed run.
    #[test]
    fn cached_done_timeout_reports_budget_not_full_latency() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        let out = cx.execute(&q, &plan, None).unwrap();
        let tight = out.latency / 2.0;
        let FossError::Timeout { spent, budget } = cx.execute(&q, &plan, Some(tight)).unwrap_err()
        else {
            panic!("expected a timeout");
        };
        assert_eq!(budget, tight as u64);
        assert_eq!(
            spent, tight as u64,
            "spent mirrors the budget, not {}",
            out.latency
        );
        assert_eq!(cx.executions(), 1);
    }

    #[test]
    fn injected_cache_errors_are_transient_and_deterministic() {
        use foss_common::{FaultPlan, FaultSite};
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let faults = Arc::new(
            FaultPlan::builder(11)
                .fault(FaultSite::CacheError, 1.0)
                .burst(FaultSite::CacheError, 2)
                .build(),
        );
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model())
            .with_fault_plan(faults.clone());
        // The burst: two transient failures, no execution happened.
        for _ in 0..2 {
            let err = cx.execute(&q, &plan, None).unwrap_err();
            assert!(matches!(err, FossError::Transient(_)), "got {err}");
        }
        assert_eq!(cx.stats().executions, 0, "faulted lookups must not run");
        // Healed: the plan executes normally and the cache works again.
        let out = cx.execute(&q, &plan, None).unwrap();
        assert_eq!(cx.execute(&q, &plan, None).unwrap(), out);
        let s = cx.stats();
        assert_eq!((s.executions, s.hits), (1, 1));
        assert_eq!(faults.stats().injected_at(FaultSite::CacheError), 2);
    }

    #[test]
    fn inactive_fault_plan_changes_nothing() {
        use foss_common::FaultPlan;
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let plain = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        let faulted = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model())
            .with_fault_plan(Arc::new(FaultPlan::none()));
        let a = plain.execute(&q, &plan, None).unwrap();
        let b = faulted.execute(&q, &plan, None).unwrap();
        assert_eq!(a, b, "FaultPlan::none() must be invisible");
        assert_eq!(plain.stats(), faulted.stats());
    }

    #[test]
    fn clear_resets_cache() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        cx.execute(&q, &plan, None).unwrap();
        cx.clear();
        assert_eq!(cx.stats().entries, 0);
        cx.execute(&q, &plan, None).unwrap();
        assert_eq!(cx.stats().executions, 2);
    }
}
