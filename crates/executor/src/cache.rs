//! Latency memoisation.
//!
//! The training loop executes the same (query, plan) pair many times across
//! episodes and AAM retraining rounds; since execution is deterministic, the
//! outcome can be memoised by plan fingerprint. This mirrors the paper's
//! execution buffer semantics: once a plan's latency is known it never needs
//! to be re-executed.

use std::sync::Arc;

use parking_lot::Mutex;

use foss_common::{FossError, FxHashMap, QueryId, Result};
use foss_optimizer::{CostModel, PhysicalPlan};
use foss_query::Query;

use crate::database::Database;
use crate::exec::{ExecOutcome, Executor};

/// What a cached execution looked like.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CachedResult {
    /// Finished within budget.
    Done(ExecOutcome),
    /// Hit the work budget; the recorded value is the budget spent.
    TimedOut {
        /// Budget that was exceeded.
        budget: f64,
    },
}

type CacheKey = (QueryId, u64);

/// Cache map plus FIFO bookkeeping behind one lock so lookup, insert and
/// eviction stay atomic.
#[derive(Debug, Default)]
struct CacheState {
    map: FxHashMap<CacheKey, CachedResult>,
    /// Insertion order of keys, oldest first; only consulted when bounded.
    order: std::collections::VecDeque<CacheKey>,
    /// `None` = unbounded (training-loop default).
    capacity: Option<usize>,
    evictions: u64,
}

impl CacheState {
    fn insert(&mut self, key: CacheKey, value: CachedResult) {
        if self.map.insert(key, value).is_some() {
            // Overwrite (e.g. a timed-out entry upgraded after a re-run with
            // a larger budget): position in the FIFO is unchanged.
            return;
        }
        if let Some(cap) = self.capacity {
            self.order.push_back(key);
            // Every bounded fresh insert pushed to `order`, so the deque
            // can't run dry while the map is over capacity.
            while self.map.len() > cap {
                let oldest = self.order.pop_front().expect("FIFO out of sync with map");
                if self.map.remove(&oldest).is_some() {
                    self.evictions += 1;
                }
            }
        }
    }
}

/// An [`Executor`] front-end with a fingerprint-keyed latency cache and an
/// execution counter (used to report "plans executed" statistics).
///
/// By default the cache is unbounded — the training loop revisits the same
/// (query, plan) pairs across episodes and wants every latency memoised.
/// [`CachingExecutor::with_capacity`] bounds it with FIFO eviction for
/// serving-style workloads where the plan stream is unbounded.
pub struct CachingExecutor {
    db: Arc<Database>,
    cost: CostModel,
    cache: Mutex<CacheState>,
    executions: Mutex<u64>,
}

impl CachingExecutor {
    /// Wrap a database + cost model with an unbounded cache.
    pub fn new(db: Arc<Database>, cost: CostModel) -> Self {
        Self {
            db,
            cost,
            cache: Mutex::new(CacheState::default()),
            executions: Mutex::new(0),
        }
    }

    /// Like [`CachingExecutor::new`], but the cache holds at most `capacity`
    /// outcomes; inserting beyond that evicts the oldest entries first.
    ///
    /// # Panics
    /// If `capacity == 0` — such a cache would evict every entry on insert
    /// and silently defeat memoisation; use [`CachingExecutor::new`] for an
    /// unbounded cache instead.
    pub fn with_capacity(db: Arc<Database>, cost: CostModel, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive (use `new` for unbounded)");
        Self {
            db,
            cost,
            cache: Mutex::new(CacheState {
                capacity: Some(capacity),
                ..CacheState::default()
            }),
            executions: Mutex::new(0),
        }
    }

    /// Execute (or recall) `plan` under an optional work budget.
    ///
    /// A cached `Done` outcome is returned regardless of the budget (its
    /// latency is exact, the caller can compare against any threshold). A
    /// cached `TimedOut` is only reused when the new budget is not larger
    /// than the budget that failed; otherwise the plan is re-executed.
    pub fn execute(
        &self,
        query: &Query,
        plan: &PhysicalPlan,
        budget: Option<f64>,
    ) -> Result<ExecOutcome> {
        let key = (query.id, plan.fingerprint());
        if let Some(cached) = self.cache.lock().map.get(&key).copied() {
            match cached {
                CachedResult::Done(out) => {
                    if let Some(b) = budget {
                        if out.latency > b {
                            return Err(FossError::Timeout {
                                spent: out.latency as u64,
                                budget: b as u64,
                            });
                        }
                    }
                    return Ok(out);
                }
                CachedResult::TimedOut { budget: old } => {
                    if let Some(b) = budget.filter(|&b| b <= old) {
                        // `spent` is the work the failed run actually did;
                        // `budget` echoes what this caller asked for.
                        return Err(FossError::Timeout { spent: old as u64, budget: b as u64 });
                    }
                    // Larger (or no) budget: fall through and re-execute.
                }
            }
        }
        *self.executions.lock() += 1;
        let exec = Executor::new(&self.db, self.cost);
        match exec.execute(query, plan, budget) {
            Ok(out) => {
                self.cache.lock().insert(key, CachedResult::Done(out));
                Ok(out)
            }
            Err(e @ FossError::Timeout { .. }) => {
                if let Some(b) = budget {
                    self.cache.lock().insert(key, CachedResult::TimedOut { budget: b });
                }
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Number of *real* executions performed (cache misses) over the
    /// executor's lifetime; [`CachingExecutor::clear`] does not reset it.
    pub fn executions(&self) -> u64 {
        *self.executions.lock()
    }

    /// Number of cached entries.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().map.len()
    }

    /// Number of entries evicted to honour the capacity bound over the
    /// executor's lifetime; like [`CachingExecutor::executions`] it is a
    /// monotone counter that [`CachingExecutor::clear`] does not reset.
    pub fn evictions(&self) -> u64 {
        self.cache.lock().evictions
    }

    /// Drop all cached outcomes (used between experiment repetitions).
    /// The `executions`/`evictions` counters are lifetime totals and are
    /// deliberately left untouched.
    pub fn clear(&self) {
        let mut cache = self.cache.lock();
        cache.map.clear();
        cache.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_catalog::{ColumnDef, Schema, TableDef};
    use foss_common::QueryId;
    use foss_optimizer::{CardinalityEstimator, TraditionalOptimizer};
    use foss_query::QueryBuilder;
    use foss_storage::{Column, Table};
    use std::sync::Arc;

    fn setup() -> (Database, TraditionalOptimizer, Query) {
        let mut schema = Schema::new();
        schema
            .add_table(TableDef {
                name: "a".into(),
                columns: vec![ColumnDef::indexed("id")],
            })
            .unwrap();
        schema
            .add_table(TableDef {
                name: "b".into(),
                columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("a_id")],
            })
            .unwrap();
        let schema = Arc::new(schema);
        let a = Table::new("a", vec![("id".into(), Column::new((0..50).collect()))]).unwrap();
        let b = Table::new(
            "b",
            vec![
                ("id".into(), Column::new((0..200).collect())),
                ("a_id".into(), Column::new((0..200).map(|i| i % 50).collect())),
            ],
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![a, b], 8).unwrap();
        let opt = TraditionalOptimizer::new(
            schema.clone(),
            CardinalityEstimator::new(db.stats_vec()),
            CostModel::default(),
        );
        let mut qb = QueryBuilder::new(QueryId::new(0), 1);
        let ra = qb.relation(schema.table_id("a").unwrap(), "a");
        let rb = qb.relation(schema.table_id("b").unwrap(), "b");
        qb.join(ra, 0, rb, 1);
        let q = qb.build(&schema).unwrap();
        (db, opt, q)
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let (db, opt, _) = setup();
        let _ = CachingExecutor::with_capacity(Arc::new(db), *opt.cost_model(), 0);
    }

    #[test]
    fn second_execution_hits_cache() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        let a = cx.execute(&q, &plan, None).unwrap();
        let b = cx.execute(&q, &plan, None).unwrap();
        assert_eq!(a, b);
        assert_eq!(cx.executions(), 1);
        assert_eq!(cx.cache_len(), 1);
    }

    #[test]
    fn cached_done_respects_tighter_budget() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        let out = cx.execute(&q, &plan, None).unwrap();
        let err = cx.execute(&q, &plan, Some(out.latency / 2.0)).unwrap_err();
        assert!(matches!(err, FossError::Timeout { .. }));
        assert_eq!(cx.executions(), 1, "timeout answered from cache");
    }

    #[test]
    fn timed_out_entry_retried_with_larger_budget() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        let full = Executor::new(&db, *opt.cost_model())
            .execute(&q, &plan, None)
            .unwrap();
        assert!(cx.execute(&q, &plan, Some(full.latency / 10.0)).is_err());
        assert_eq!(cx.executions(), 1);
        // Same tight budget: cache answers, no new execution.
        assert!(cx.execute(&q, &plan, Some(full.latency / 20.0)).is_err());
        assert_eq!(cx.executions(), 1);
        // Larger budget: re-executes and succeeds.
        let out = cx.execute(&q, &plan, Some(full.latency * 2.0)).unwrap();
        assert_eq!(out, full);
        assert_eq!(cx.executions(), 2);
    }

    #[test]
    fn bounded_cache_evicts_oldest_first() {
        let (db, opt, q) = setup();
        let expert = opt.optimize(&q).unwrap();
        // Three distinct plans: the expert and its two method variants.
        let icp = expert.extract_icp().unwrap();
        let mut plans = vec![expert];
        for j in 1..=2 {
            let mut cand = icp.clone();
            cand.override_method(1, (icp.methods[0].index() + j) % 3 + 1).unwrap_or(());
            plans.push(opt.optimize_with_hint(&q, &cand).unwrap());
        }
        plans.dedup_by_key(|p| p.fingerprint());
        assert!(plans.len() >= 2, "need distinct plans to exercise eviction");

        let cx = CachingExecutor::with_capacity(Arc::new(db.clone()), *opt.cost_model(), 1);
        cx.execute(&q, &plans[0], None).unwrap();
        assert_eq!((cx.cache_len(), cx.evictions()), (1, 0));
        // Second distinct plan evicts the first.
        cx.execute(&q, &plans[1], None).unwrap();
        assert_eq!((cx.cache_len(), cx.evictions()), (1, 1));
        // Re-running the evicted plan is a miss again.
        cx.execute(&q, &plans[0], None).unwrap();
        assert_eq!(cx.executions(), 3);
        assert_eq!(cx.evictions(), 2);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        for _ in 0..10 {
            cx.execute(&q, &plan, None).unwrap();
        }
        assert_eq!(cx.executions(), 1);
        assert_eq!(cx.evictions(), 0);
    }

    #[test]
    fn timed_out_upgrade_keeps_cache_bounded() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let full = Executor::new(&db, *opt.cost_model())
            .execute(&q, &plan, None)
            .unwrap();
        let cx = CachingExecutor::with_capacity(Arc::new(db.clone()), *opt.cost_model(), 2);
        // Time out once, then upgrade the same key with a larger budget: the
        // overwrite must not double-count the key in the FIFO.
        assert!(cx.execute(&q, &plan, Some(full.latency / 10.0)).is_err());
        cx.execute(&q, &plan, None).unwrap();
        assert_eq!(cx.cache_len(), 1);
        assert_eq!(cx.evictions(), 0);
    }

    #[test]
    fn clear_resets_cache() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let cx = CachingExecutor::new(Arc::new(db.clone()), *opt.cost_model());
        cx.execute(&q, &plan, None).unwrap();
        cx.clear();
        assert_eq!(cx.cache_len(), 0);
        cx.execute(&q, &plan, None).unwrap();
        assert_eq!(cx.executions(), 2);
    }
}
