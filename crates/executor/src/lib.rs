//! Plan execution with deterministic work-unit latency.
//!
//! Substitutes for the DBMS executor `Ψp` of the paper. Every physical
//! operator is *actually executed* over the in-memory tables, and the work
//! performed (tuples scanned, hash builds/probes, sort comparisons, index
//! descents, output tuples) is charged with the **same cost constants** the
//! optimizer uses for estimation. "True latency" is therefore:
//!
//! * deterministic — identical across runs, so experiments are reproducible;
//! * faithful — bad join orders and bad join methods really are slow, because
//!   the executor really does the extra work;
//! * divergent from the optimizer's estimate exactly where cardinality
//!   estimation errs, which is the repair opportunity FOSS learns.
//!
//! A work-unit **budget** implements the paper's dynamic timeout (1.5× the
//! original plan's latency): execution aborts with [`foss_common::FossError::Timeout`]
//! once the budget is exceeded, mid-operator (at chunk granularity) if
//! necessary.
//!
//! Operators come in two engines selected by [`ExecMode`]: the default
//! chunk-at-a-time engine ([`CHUNK_SIZE`]-row column chunks with selection
//! vectors) and the scalar row-at-a-time reference kept for differential
//! testing. Both charge identical work units and produce identical tuples.

pub mod agg;
pub mod cache;
pub mod database;
pub mod exec;
pub mod fused;
mod parallel;

pub use agg::{AggResult, AggRow};
pub use cache::{CacheStats, CachingExecutor, EvictionPolicy};
pub use database::Database;
pub use exec::{ExecMode, ExecOutcome, Executor, ParallelConfig, RowSet, CHUNK_SIZE};
pub use fused::FusedPipeline;
