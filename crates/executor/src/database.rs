//! A database instance: schema + stored tables + statistics.

use std::sync::Arc;

use foss_catalog::{Schema, TableStats};
use foss_common::{FossError, Result, TableId};
use foss_storage::Table;

/// Stored tables aligned with a [`Schema`], with indexes built on every
/// column the schema declares `indexed` and `ANALYZE`-style statistics.
#[derive(Debug, Clone)]
pub struct Database {
    schema: Arc<Schema>,
    tables: Vec<Table>,
    stats: Vec<TableStats>,
}

impl Database {
    /// Assemble a database; `tables` must match the schema's table order and
    /// column layout. Indexes are built for every `indexed` column.
    pub fn new(
        schema: Arc<Schema>,
        mut tables: Vec<Table>,
        histogram_buckets: usize,
    ) -> Result<Self> {
        if tables.len() != schema.table_count() {
            return Err(FossError::InvalidQuery(format!(
                "schema has {} tables, got {}",
                schema.table_count(),
                tables.len()
            )));
        }
        for (def, table) in schema.tables().iter().zip(&tables) {
            if def.columns.len() != table.column_count() {
                return Err(FossError::InvalidQuery(format!(
                    "table {} column count mismatch",
                    def.name
                )));
            }
        }
        for (def, table) in schema.tables().iter().zip(tables.iter_mut()) {
            for (ci, col) in def.columns.iter().enumerate() {
                if col.indexed {
                    table.build_hash_index(ci);
                    table.build_sorted_index(ci);
                }
            }
        }
        let stats = tables
            .iter()
            .map(|t| TableStats::analyze(t, histogram_buckets))
            .collect();
        Ok(Self {
            schema,
            tables,
            stats,
        })
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Stored table by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// `ANALYZE` output for the whole database (feeds the optimizer).
    pub fn stats(&self) -> &[TableStats] {
        &self.stats
    }

    /// Clone the statistics vector (the optimizer takes ownership).
    pub fn stats_vec(&self) -> Vec<TableStats> {
        self.stats.clone()
    }

    /// Total stored rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::row_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_catalog::{ColumnDef, TableDef};
    use foss_storage::Column;

    fn schema_one() -> Arc<Schema> {
        let mut s = Schema::new();
        s.add_table(TableDef {
            name: "t".into(),
            columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("v")],
        })
        .unwrap();
        Arc::new(s)
    }

    fn table_one() -> Table {
        Table::new(
            "t",
            vec![
                ("id".into(), Column::new(vec![0, 1, 2])),
                ("v".into(), Column::new(vec![5, 6, 7])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn builds_indexes_on_indexed_columns() {
        let db = Database::new(schema_one(), vec![table_one()], 8).unwrap();
        let t = db.table(TableId::new(0));
        assert!(t.hash_index(0).is_some());
        assert!(t.sorted_index(0).is_some());
        assert!(t.hash_index(1).is_none());
        assert_eq!(db.total_rows(), 3);
        assert_eq!(db.stats().len(), 1);
    }

    #[test]
    fn table_count_mismatch_rejected() {
        assert!(Database::new(schema_one(), vec![], 8).is_err());
    }

    #[test]
    fn column_count_mismatch_rejected() {
        let bad = Table::new("t", vec![("id".into(), Column::new(vec![1]))]).unwrap();
        assert!(Database::new(schema_one(), vec![bad], 8).is_err());
    }
}
