//! The physical operator interpreter.

use foss_common::{FossError, Result};
use foss_optimizer::{AccessPath, CostModel, JoinMethod, PhysicalPlan, PlanNode};
use foss_query::{JoinEdge, Predicate, Query};

use crate::database::Database;

/// Result of executing a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecOutcome {
    /// Deterministic latency in work units.
    pub latency: f64,
    /// Number of result tuples (`COUNT(*)` semantics).
    pub rows: u64,
}

/// Intermediate result: tuples of row ids, one column per joined relation.
struct Rows {
    /// Relation index corresponding to each tuple slot.
    rels: Vec<usize>,
    /// Flattened tuples; stride = `rels.len()`.
    data: Vec<u32>,
}

impl Rows {
    fn stride(&self) -> usize {
        self.rels.len()
    }

    fn len(&self) -> usize {
        if self.rels.is_empty() {
            0
        } else {
            self.data.len() / self.rels.len()
        }
    }

    fn tuple(&self, i: usize) -> &[u32] {
        let s = self.stride();
        &self.data[i * s..(i + 1) * s]
    }

    fn slot_of(&self, rel: usize) -> usize {
        self.rels
            .iter()
            .position(|&r| r == rel)
            .expect("join edge references un-joined relation")
    }
}

/// Executes physical plans against a [`Database`].
pub struct Executor<'a> {
    db: &'a Database,
    cost: CostModel,
}

struct WorkMeter {
    spent: f64,
    budget: f64,
}

impl WorkMeter {
    fn charge(&mut self, amount: f64) -> Result<()> {
        self.spent += amount;
        if self.spent > self.budget {
            Err(FossError::Timeout { spent: self.spent as u64, budget: self.budget as u64 })
        } else {
            Ok(())
        }
    }
}

impl<'a> Executor<'a> {
    /// Executor over `db`, charging with `cost`'s constants (pass the same
    /// model the optimizer uses so the two live on one scale).
    pub fn new(db: &'a Database, cost: CostModel) -> Self {
        Self { db, cost }
    }

    /// Execute `plan` for `query`.
    ///
    /// `budget` is the dynamic-timeout work-unit budget; `None` means
    /// unlimited. On timeout the error carries the spent/budget amounts so
    /// the training loop can label the plan.
    pub fn execute(
        &self,
        query: &Query,
        plan: &PhysicalPlan,
        budget: Option<f64>,
    ) -> Result<ExecOutcome> {
        let mut meter = WorkMeter { spent: 0.0, budget: budget.unwrap_or(f64::INFINITY) };
        let rows = self.exec_node(query, &plan.root, &mut meter)?;
        Ok(ExecOutcome { latency: meter.spent, rows: rows.len() as u64 })
    }

    fn exec_node(&self, query: &Query, node: &PlanNode, meter: &mut WorkMeter) -> Result<Rows> {
        match node {
            PlanNode::Scan { relation, access, .. } => {
                let ids = self.exec_scan(query, *relation, access, meter)?;
                let mut data = Vec::with_capacity(ids.len());
                data.extend(ids);
                Ok(Rows { rels: vec![*relation], data })
            }
            PlanNode::Join { method, left, right, edges, index_nl, .. } => {
                let outer = self.exec_node(query, left, meter)?;
                if *index_nl {
                    let PlanNode::Scan { relation, .. } = **right else {
                        return Err(FossError::InvalidPlan(
                            "index nested loop requires a scan inner".into(),
                        ));
                    };
                    return self.index_nl_join(query, outer, relation, edges, meter);
                }
                let inner = self.exec_node(query, right, meter)?;
                match method {
                    JoinMethod::Hash => self.hash_join(query, outer, inner, edges, meter),
                    JoinMethod::Merge => self.merge_join(query, outer, inner, edges, meter),
                    JoinMethod::NestLoop => self.nl_join(query, outer, inner, edges, meter),
                }
            }
        }
    }

    fn exec_scan(
        &self,
        query: &Query,
        rel: usize,
        access: &AccessPath,
        meter: &mut WorkMeter,
    ) -> Result<Vec<u32>> {
        let relation = &query.relations[rel];
        let table = self.db.table(relation.table);
        let preds = &relation.predicates;
        let p = &self.cost.params;
        match access {
            AccessPath::SeqScan => {
                meter.charge(
                    table.row_count() as f64 * (p.cpu_tuple + p.pred_eval * preds.len() as f64),
                )?;
                let mut out = Vec::new();
                'rows: for row in 0..table.row_count() {
                    for pr in preds {
                        if !pr.matches(table.column(pr.column()).get(row)) {
                            continue 'rows;
                        }
                    }
                    out.push(row as u32);
                }
                Ok(out)
            }
            AccessPath::IndexScan { column } => {
                let driving = preds.iter().find(|pr| pr.column() == *column).copied();
                let residual: Vec<Predicate> =
                    preds.iter().filter(|pr| pr.column() != *column).copied().collect();
                let n = table.row_count() as f64;
                let mut matches: Vec<u32> = match driving {
                    Some(Predicate::Eq { value, .. }) => {
                        if let Some(h) = table.hash_index(*column) {
                            h.lookup(value).to_vec()
                        } else if let Some(s) = table.sorted_index(*column) {
                            s.equal(value).collect()
                        } else {
                            return Err(FossError::InvalidPlan(format!(
                                "index scan on unindexed column {column}"
                            )));
                        }
                    }
                    Some(Predicate::Range { lo, hi, .. }) => {
                        let s = table.sorted_index(*column).ok_or_else(|| {
                            FossError::InvalidPlan(format!(
                                "range index scan on unindexed column {column}"
                            ))
                        })?;
                        s.range(lo, hi).collect()
                    }
                    None => {
                        // Index-only marker without a driving predicate:
                        // degenerate full index scan.
                        (0..table.row_count() as u32).collect()
                    }
                };
                meter.charge(self.cost.index_scan(n, matches.len() as f64, residual.len()))?;
                if !residual.is_empty() {
                    matches.retain(|&row| {
                        residual
                            .iter()
                            .all(|pr| pr.matches(table.column(pr.column()).get(row as usize)))
                    });
                }
                matches.sort_unstable();
                Ok(matches)
            }
        }
    }

    /// Value of `(rel, col)` for one side of a join condition.
    #[inline]
    fn value(&self, query: &Query, rel: usize, col: usize, row: u32) -> i64 {
        self.db
            .table(query.relations[rel].table)
            .column(col)
            .get(row as usize)
    }

    fn check_extra_edges(
        &self,
        query: &Query,
        outer: &Rows,
        outer_tuple: &[u32],
        inner_rel: usize,
        inner_row: u32,
        edges: &[JoinEdge],
    ) -> bool {
        edges.iter().skip(1).all(|e| {
            let lv = self.value(query, e.left, e.left_column, outer_tuple[outer.slot_of(e.left)]);
            let rv = self.value(query, inner_rel, e.right_column, inner_row);
            lv == rv
        })
    }

    fn emit(out: &mut Vec<u32>, outer_tuple: &[u32], inner_row: u32) {
        out.extend_from_slice(outer_tuple);
        out.push(inner_row);
    }

    fn hash_join(
        &self,
        query: &Query,
        outer: Rows,
        inner: Rows,
        edges: &[JoinEdge],
        meter: &mut WorkMeter,
    ) -> Result<Rows> {
        let p = self.cost.params;
        let inner_rel = inner.rels[0];
        if edges.is_empty() {
            return self.cross_join(outer, inner, meter);
        }
        let key = edges[0];
        // Build on inner.
        meter.charge(inner.len() as f64 * p.hash_build)?;
        let mut table: foss_common::FxHashMap<i64, Vec<u32>> = foss_common::FxHashMap::default();
        for i in 0..inner.len() {
            let row = inner.data[i];
            table
                .entry(self.value(query, inner_rel, key.right_column, row))
                .or_default()
                .push(row);
        }
        // Probe with outer.
        let mut out = Vec::new();
        let lslot = outer.slot_of(key.left);
        for i in 0..outer.len() {
            meter.charge(p.hash_probe)?;
            let t = outer.tuple(i);
            let lv = self.value(query, key.left, key.left_column, t[lslot]);
            if let Some(cands) = table.get(&lv) {
                for &row in cands {
                    if self.check_extra_edges(query, &outer, t, inner_rel, row, edges) {
                        meter.charge(p.output_tuple)?;
                        Self::emit(&mut out, t, row);
                    }
                }
            }
        }
        let mut rels = outer.rels;
        rels.push(inner_rel);
        Ok(Rows { rels, data: out })
    }

    fn merge_join(
        &self,
        query: &Query,
        outer: Rows,
        inner: Rows,
        edges: &[JoinEdge],
        meter: &mut WorkMeter,
    ) -> Result<Rows> {
        let p = self.cost.params;
        let inner_rel = inner.rels[0];
        if edges.is_empty() {
            return self.cross_join(outer, inner, meter);
        }
        let key = edges[0];
        meter.charge(self.cost.sort(outer.len() as f64) + self.cost.sort(inner.len() as f64))?;
        let lslot = outer.slot_of(key.left);
        // Sort outer tuple indexes and inner rows by key value.
        let mut oidx: Vec<usize> = (0..outer.len()).collect();
        oidx.sort_unstable_by_key(|&i| {
            self.value(query, key.left, key.left_column, outer.tuple(i)[lslot])
        });
        let mut irows: Vec<u32> = inner.data.clone();
        irows.sort_unstable_by_key(|&row| self.value(query, inner_rel, key.right_column, row));

        meter.charge((outer.len() + inner.len()) as f64 * p.merge_step)?;
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < oidx.len() && j < irows.len() {
            let ov = self.value(query, key.left, key.left_column, outer.tuple(oidx[i])[lslot]);
            let iv = self.value(query, inner_rel, key.right_column, irows[j]);
            if ov < iv {
                i += 1;
            } else if ov > iv {
                j += 1;
            } else {
                // Equal group: emit the cartesian product of the group.
                let jstart = j;
                let mut jend = j;
                while jend < irows.len()
                    && self.value(query, inner_rel, key.right_column, irows[jend]) == ov
                {
                    jend += 1;
                }
                while i < oidx.len()
                    && self.value(query, key.left, key.left_column, outer.tuple(oidx[i])[lslot])
                        == ov
                {
                    let t = outer.tuple(oidx[i]);
                    for &row in &irows[jstart..jend] {
                        if self.check_extra_edges(query, &outer, t, inner_rel, row, edges) {
                            meter.charge(p.output_tuple)?;
                            Self::emit(&mut out, t, row);
                        }
                    }
                    i += 1;
                }
                j = jend;
            }
        }
        let mut rels = outer.rels;
        rels.push(inner_rel);
        Ok(Rows { rels, data: out })
    }

    fn nl_join(
        &self,
        query: &Query,
        outer: Rows,
        inner: Rows,
        edges: &[JoinEdge],
        meter: &mut WorkMeter,
    ) -> Result<Rows> {
        let p = self.cost.params;
        let inner_rel = inner.rels[0];
        let mut out = Vec::new();
        for i in 0..outer.len() {
            // Charge a whole inner pass per outer row so catastrophic loops
            // hit the budget after the first few rows.
            meter.charge(inner.len() as f64 * p.nl_pair)?;
            let t = outer.tuple(i);
            'inner: for &row in &inner.data {
                for e in edges {
                    let lv = self.value(query, e.left, e.left_column, t[outer.slot_of(e.left)]);
                    let rv = self.value(query, inner_rel, e.right_column, row);
                    if lv != rv {
                        continue 'inner;
                    }
                }
                meter.charge(p.output_tuple)?;
                Self::emit(&mut out, t, row);
            }
        }
        let mut rels = outer.rels;
        rels.push(inner_rel);
        Ok(Rows { rels, data: out })
    }

    fn index_nl_join(
        &self,
        query: &Query,
        outer: Rows,
        inner_rel: usize,
        edges: &[JoinEdge],
        meter: &mut WorkMeter,
    ) -> Result<Rows> {
        let p = self.cost.params;
        let key = *edges.first().ok_or_else(|| {
            FossError::InvalidPlan("index nested loop requires a join edge".into())
        })?;
        let relation = &query.relations[inner_rel];
        let table = self.db.table(relation.table);
        let index = table.hash_index(key.right_column).ok_or_else(|| {
            FossError::InvalidPlan(format!(
                "index nested loop on unindexed column {}",
                key.right_column
            ))
        })?;
        let descent = p.index_probe + 0.3 * (table.row_count() as f64).max(2.0).log2();
        let preds = &relation.predicates;
        let lslot = outer.slot_of(key.left);
        let mut out = Vec::new();
        for i in 0..outer.len() {
            meter.charge(descent)?;
            let t = outer.tuple(i);
            let lv = self.value(query, key.left, key.left_column, t[lslot]);
            let fetched = index.lookup(lv);
            meter.charge(fetched.len() as f64 * (p.index_fetch + p.pred_eval * preds.len() as f64))?;
            'fetch: for &row in fetched {
                for pr in preds {
                    if !pr.matches(table.column(pr.column()).get(row as usize)) {
                        continue 'fetch;
                    }
                }
                if !self.check_extra_edges(query, &outer, t, inner_rel, row, edges) {
                    continue;
                }
                meter.charge(p.output_tuple)?;
                Self::emit(&mut out, t, row);
            }
        }
        let mut rels = outer.rels;
        rels.push(inner_rel);
        Ok(Rows { rels, data: out })
    }

    fn cross_join(&self, outer: Rows, inner: Rows, meter: &mut WorkMeter) -> Result<Rows> {
        let p = self.cost.params;
        let inner_rel = inner.rels[0];
        let mut out = Vec::new();
        for i in 0..outer.len() {
            meter.charge(inner.len() as f64 * p.nl_pair)?;
            let t = outer.tuple(i);
            for &row in &inner.data {
                meter.charge(p.output_tuple)?;
                Self::emit(&mut out, t, row);
            }
        }
        let mut rels = outer.rels;
        rels.push(inner_rel);
        Ok(Rows { rels, data: out })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_catalog::{ColumnDef, Schema, TableDef};
    use foss_common::QueryId;
    use foss_optimizer::{CardinalityEstimator, Icp, TraditionalOptimizer, ALL_JOIN_METHODS};
    use foss_query::QueryBuilder;
    use foss_storage::{Column, Table};
    use std::sync::Arc;

    /// Two tables with a known join result for correctness checks:
    /// a has ids 0..10, b has 30 rows with fk = id % 10 → join = 30 rows.
    fn setup() -> (Database, TraditionalOptimizer, Query) {
        let mut schema = Schema::new();
        schema
            .add_table(TableDef {
                name: "a".into(),
                columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("v")],
            })
            .unwrap();
        schema
            .add_table(TableDef {
                name: "b".into(),
                columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("a_id")],
            })
            .unwrap();
        let schema = Arc::new(schema);
        let a = Table::new(
            "a",
            vec![
                ("id".into(), Column::new((0..10).collect())),
                ("v".into(), Column::new((0..10).map(|i| i % 3).collect())),
            ],
        )
        .unwrap();
        let b = Table::new(
            "b",
            vec![
                ("id".into(), Column::new((0..30).collect())),
                ("a_id".into(), Column::new((0..30).map(|i| i % 10).collect())),
            ],
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![a, b], 8).unwrap();
        let opt = TraditionalOptimizer::new(
            schema.clone(),
            CardinalityEstimator::new(db.stats_vec()),
            CostModel::default(),
        );
        let mut qb = QueryBuilder::new(QueryId::new(0), 1);
        let ra = qb.relation(schema.table_id("a").unwrap(), "a");
        let rb = qb.relation(schema.table_id("b").unwrap(), "b");
        qb.join(ra, 0, rb, 1);
        let q = qb.build(&schema).unwrap();
        (db, opt, q)
    }

    #[test]
    fn optimized_plan_gives_correct_count() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let exec = Executor::new(&db, *opt.cost_model());
        let out = exec.execute(&q, &plan, None).unwrap();
        assert_eq!(out.rows, 30);
        assert!(out.latency > 0.0);
    }

    #[test]
    fn all_join_methods_agree_on_result_count() {
        let (db, opt, q) = setup();
        let exec = Executor::new(&db, *opt.cost_model());
        for order in [vec![0usize, 1], vec![1, 0]] {
            for m in ALL_JOIN_METHODS {
                let icp = Icp::new(order.clone(), vec![m]).unwrap();
                let plan = opt.optimize_with_hint(&q, &icp).unwrap();
                let out = exec.execute(&q, &plan, None).unwrap();
                assert_eq!(out.rows, 30, "order={order:?} method={m}");
            }
        }
    }

    #[test]
    fn predicates_filter_results() {
        let (db, opt, q0) = setup();
        let schema = db.schema().clone();
        let mut qb = QueryBuilder::new(QueryId::new(1), 1);
        let ra = qb.relation(schema.table_id("a").unwrap(), "a");
        let rb = qb.relation(schema.table_id("b").unwrap(), "b");
        qb.join(ra, 0, rb, 1);
        qb.predicate(ra, Predicate::Eq { column: 1, value: 0 });
        let q = qb.build(&schema).unwrap();
        let plan = opt.optimize(&q).unwrap();
        let exec = Executor::new(&db, *opt.cost_model());
        let out = exec.execute(&q, &plan, None).unwrap();
        // a.v = 0 keeps ids {0,3,6,9} → 4 ids × 3 b-rows each.
        assert_eq!(out.rows, 12);
        drop(q0);
    }

    #[test]
    fn timeout_aborts_execution() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let exec = Executor::new(&db, *opt.cost_model());
        let full = exec.execute(&q, &plan, None).unwrap();
        let err = exec.execute(&q, &plan, Some(full.latency / 10.0)).unwrap_err();
        match err {
            FossError::Timeout { spent, budget } => {
                assert!(spent >= budget);
            }
            other => panic!("expected timeout, got {other}"),
        }
    }

    #[test]
    fn bad_plans_cost_more_work() {
        let (db, opt, q) = setup();
        let exec = Executor::new(&db, *opt.cost_model());
        let good = opt.optimize(&q).unwrap();
        // Force a naive nested loop with the big table outer: strictly worse.
        let bad_icp = Icp::new(vec![1, 0], vec![JoinMethod::NestLoop]).unwrap();
        let bad = opt.optimize_with_hint(&q, &bad_icp).unwrap();
        let lg = exec.execute(&q, &good, None).unwrap().latency;
        let lb = exec.execute(&q, &bad, None).unwrap().latency;
        assert!(lb > lg, "bad NL ({lb}) should exceed optimized plan ({lg})");
    }

    #[test]
    fn execution_is_deterministic() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let exec = Executor::new(&db, *opt.cost_model());
        let a = exec.execute(&q, &plan, None).unwrap();
        let b = exec.execute(&q, &plan, None).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_relation_scan_counts_rows() {
        let (db, opt, _) = setup();
        let schema = db.schema().clone();
        let mut qb = QueryBuilder::new(QueryId::new(2), 1);
        let ra = qb.relation(schema.table_id("a").unwrap(), "a");
        qb.predicate(ra, Predicate::Range { column: 0, lo: 2, hi: 5 });
        let q = qb.build(&schema).unwrap();
        let plan = opt.optimize(&q).unwrap();
        let exec = Executor::new(&db, *opt.cost_model());
        assert_eq!(exec.execute(&q, &plan, None).unwrap().rows, 4);
    }
}
