//! The physical operator interpreter.
//!
//! Two interchangeable engines live behind [`ExecMode`]:
//!
//! * **Chunked** (the default) — chunk-at-a-time execution: every operator
//!   consumes and produces batches of [`CHUNK_SIZE`] tuples. Scans evaluate
//!   predicates column-at-a-time over contiguous slices and refine a
//!   selection vector; joins hoist key columns out of the loop, gather probe
//!   keys into chunk-local buffers, and emit (project) matched tuples in
//!   bulk. The `COUNT(*)` aggregate at the root is the chunk count folded in
//!   [`Executor::execute`].
//! * **Scalar** — the reference row-at-a-time interpreter, kept for
//!   differential testing (see the chunked-vs-scalar property tests).
//!
//! Both engines share one *chunk-granular metering discipline*: work-unit
//! charges are accrued per chunk, in the same order, with the same floating
//! point operations. Latencies are therefore **bit-identical** across modes,
//! and results match row-for-row in the same order — switching engines can
//! never change trained-model behaviour.

use foss_common::{FossError, Result};
use foss_optimizer::{AccessPath, CostModel, JoinMethod, PhysicalPlan, PlanNode};
use foss_query::{JoinEdge, Predicate, Query};

use crate::database::Database;

/// Rows per execution chunk (tuples processed between two meter charges).
pub const CHUNK_SIZE: usize = 1024;

/// Which operator implementations the interpreter dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Chunk-at-a-time operators over column chunks with selection vectors.
    #[default]
    Chunked,
    /// Row-at-a-time reference interpreter (differential-testing flag).
    Scalar,
}

/// Intra-query parallelism knobs for the chunked engine.
///
/// Worker threads pull [`CHUNK_SIZE`]-aligned morsels off a shared queue;
/// morsel boundaries depend only on the input size (never on host cores), and
/// a shard-ordered merge replays the sequential engine's exact floating-point
/// charge sequence, so results **and** metered latency are bit-identical for
/// every worker count — including timeouts. `workers == 1` (the default
/// unless `FOSS_WORKERS` is set) keeps every operator on the caller's thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelConfig {
    /// Worker threads for parallel operators (1 = sequential).
    pub workers: usize,
    /// Chunks per morsel; the queue hands out `morsel_chunks * CHUNK_SIZE`
    /// rows at a time.
    pub morsel_chunks: usize,
    /// Build-side keys owning at least this fraction of the build rows are
    /// broadcast to every probe worker instead of hashed into one partition.
    pub hot_key_fraction: f64,
    /// Absolute row-count floor for hot-key broadcast (small builds never
    /// pay the replication bookkeeping).
    pub hot_key_min: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            workers: foss_common::env_workers(),
            morsel_chunks: 8,
            hot_key_fraction: 1.0 / 64.0,
            hot_key_min: 64,
        }
    }
}

impl ParallelConfig {
    /// A config that keeps execution on the calling thread regardless of
    /// `FOSS_WORKERS`.
    pub fn sequential() -> Self {
        Self {
            workers: 1,
            ..Self::default()
        }
    }

    /// Rows per morsel (always a multiple of [`CHUNK_SIZE`], so morsel
    /// boundaries coincide with the sequential engine's chunk boundaries).
    pub fn morsel_rows(&self) -> usize {
        self.morsel_chunks.max(1) * CHUNK_SIZE
    }
}

/// Result of executing a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecOutcome {
    /// Deterministic latency in work units.
    pub latency: f64,
    /// Number of result tuples (`COUNT(*)` semantics).
    pub rows: u64,
}

/// Materialised result: tuples of row ids, one slot per joined relation.
///
/// Public so differential tests can compare full result sets (not just
/// counts) across [`ExecMode`]s; see [`Executor::execute_rows`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowSet {
    /// Relation index corresponding to each tuple slot.
    pub rels: Vec<usize>,
    /// Flattened tuples; stride = `rels.len()`.
    pub data: Vec<u32>,
    /// The query's projection list (group key and aggregate input columns),
    /// populated at the plan root by [`Executor::execute_rows`] so downstream
    /// consumers — the group-by aggregator above all — know which columns to
    /// gather out of the tuples. Empty for plain `COUNT(*)` queries.
    pub proj: Vec<foss_query::ColRef>,
}

impl RowSet {
    /// A result set with an empty projection list (operators build these;
    /// the root attaches the query's projection).
    pub(crate) fn bare(rels: Vec<usize>, data: Vec<u32>) -> Self {
        Self {
            rels,
            data,
            proj: Vec::new(),
        }
    }

    pub(crate) fn stride(&self) -> usize {
        self.rels.len()
    }

    /// Number of result tuples.
    pub fn len(&self) -> usize {
        if self.rels.is_empty() {
            0
        } else {
            self.data.len() / self.rels.len()
        }
    }

    /// True when the result holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn tuple(&self, i: usize) -> &[u32] {
        let s = self.stride();
        &self.data[i * s..(i + 1) * s]
    }

    pub(crate) fn slot_of(&self, rel: usize) -> usize {
        self.rels
            .iter()
            .position(|&r| r == rel)
            .expect("join edge references un-joined relation")
    }
}

/// Hoisted per-edge extra join-condition columns:
/// `(outer tuple slot, outer column data, inner column data)`.
pub(crate) type EdgeCols<'a> = Vec<(usize, &'a [i64], &'a [i64])>;

/// Executes physical plans against a [`Database`].
pub struct Executor<'a> {
    db: &'a Database,
    pub(crate) cost: CostModel,
    mode: ExecMode,
    pub(crate) par: ParallelConfig,
}

pub(crate) struct WorkMeter {
    pub(crate) spent: f64,
    pub(crate) budget: f64,
}

impl WorkMeter {
    pub(crate) fn charge(&mut self, amount: f64) -> Result<()> {
        self.spent += amount;
        if self.spent > self.budget {
            Err(FossError::Timeout {
                spent: self.spent as u64,
                budget: self.budget as u64,
            })
        } else {
            Ok(())
        }
    }
}

/// Fill `sel` with the row ids in `start..end` passing `pred` over
/// contiguous column data. The predicate variant is matched once, outside
/// the loop, and rows are written branchlessly (unconditional store, the
/// cursor advances by the predicate bit) so selectivity near 50% doesn't
/// stall the pipeline on mispredictions.
pub(crate) fn filter_chunk(
    pred: &Predicate,
    col: &[i64],
    start: usize,
    end: usize,
    sel: &mut Vec<u32>,
) {
    sel.clear();
    sel.resize(end - start, 0);
    let out = &mut sel[..end - start];
    let mut n = 0usize;
    match *pred {
        Predicate::Eq { value, .. } => {
            for (off, &v) in col[start..end].iter().enumerate() {
                out[n] = (start + off) as u32;
                n += (v == value) as usize;
            }
        }
        Predicate::Range { lo, hi, .. } => {
            for (off, &v) in col[start..end].iter().enumerate() {
                out[n] = (start + off) as u32;
                n += (lo <= v && v <= hi) as usize;
            }
        }
    }
    sel.truncate(n);
}

/// Accumulates per-unit work (emitted tuples, fetched index rows) and
/// charges the meter in [`CHUNK_SIZE`] quanta, so a join can overshoot its
/// budget by at most ~one chunk of unmetered output while materialising
/// matches. Both engines drive this with identical unit counts in identical
/// order, keeping the floating-point charge sequence — and therefore the
/// latency — bit-identical across [`ExecMode`]s.
pub(crate) struct BatchCharge {
    pending: usize,
    unit: f64,
}

impl BatchCharge {
    pub(crate) fn new(unit: f64) -> Self {
        Self { pending: 0, unit }
    }

    /// Record `n` units, charging whenever a full chunk has accumulated.
    #[inline]
    pub(crate) fn add(&mut self, n: usize, meter: &mut WorkMeter) -> Result<()> {
        self.pending += n;
        if self.pending >= CHUNK_SIZE {
            let pend = std::mem::take(&mut self.pending);
            meter.charge(pend as f64 * self.unit)?;
        }
        Ok(())
    }

    /// Record one unit (an emitted tuple).
    #[inline]
    pub(crate) fn emitted(&mut self, meter: &mut WorkMeter) -> Result<()> {
        self.add(1, meter)
    }

    /// Charge whatever remains below one chunk.
    pub(crate) fn flush(&mut self, meter: &mut WorkMeter) -> Result<()> {
        let pend = std::mem::take(&mut self.pending);
        meter.charge(pend as f64 * self.unit)
    }
}

/// Refine a selection vector in place by `pred` over `col`, with the same
/// branchless compaction as [`filter_chunk`].
pub(crate) fn refine_selection(pred: &Predicate, col: &[i64], sel: &mut Vec<u32>) {
    let mut n = 0usize;
    match *pred {
        Predicate::Eq { value, .. } => {
            for i in 0..sel.len() {
                let r = sel[i];
                sel[n] = r;
                n += (col[r as usize] == value) as usize;
            }
        }
        Predicate::Range { lo, hi, .. } => {
            for i in 0..sel.len() {
                let r = sel[i];
                sel[n] = r;
                let v = col[r as usize];
                n += (lo <= v && v <= hi) as usize;
            }
        }
    }
    sel.truncate(n);
}

impl<'a> Executor<'a> {
    /// Chunked executor over `db`, charging with `cost`'s constants (pass the
    /// same model the optimizer uses so the two live on one scale).
    pub fn new(db: &'a Database, cost: CostModel) -> Self {
        Self::with_mode(db, cost, ExecMode::default())
    }

    /// Executor with an explicit engine (`ExecMode::Scalar` keeps the
    /// row-at-a-time reference path for differential testing).
    ///
    /// The chunked engine picks its worker count up from the `FOSS_WORKERS`
    /// environment variable (default 1); [`Executor::with_parallelism`]
    /// overrides it. The scalar reference never parallelises.
    pub fn with_mode(db: &'a Database, cost: CostModel, mode: ExecMode) -> Self {
        Self {
            db,
            cost,
            mode,
            par: ParallelConfig::default(),
        }
    }

    /// Replace the parallelism knobs (chainable). Results and latency are
    /// bit-identical for every configuration; this only changes how the work
    /// is scheduled.
    #[must_use]
    pub fn with_parallelism(mut self, par: ParallelConfig) -> Self {
        self.par = par;
        self
    }

    /// The engine this executor dispatches to.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The parallelism knobs the chunked engine runs under.
    pub fn parallelism(&self) -> ParallelConfig {
        self.par
    }

    /// True when `rows` is large enough (at least two morsels) for the
    /// morsel queue to beat inline execution.
    #[inline]
    pub(crate) fn par_eligible(&self, rows: usize) -> bool {
        self.par.workers > 1 && rows >= 2 * self.par.morsel_rows()
    }

    /// Execute `plan` for `query`.
    ///
    /// `budget` is the dynamic-timeout work-unit budget; `None` means
    /// unlimited. On timeout the error carries the spent/budget amounts so
    /// the training loop can label the plan.
    pub fn execute(
        &self,
        query: &Query,
        plan: &PhysicalPlan,
        budget: Option<f64>,
    ) -> Result<ExecOutcome> {
        self.execute_rows(query, plan, budget).map(|(out, _)| out)
    }

    /// Like [`Executor::execute`], but also returns the materialised result
    /// tuples (used by differential tests comparing [`ExecMode`]s).
    pub fn execute_rows(
        &self,
        query: &Query,
        plan: &PhysicalPlan,
        budget: Option<f64>,
    ) -> Result<(ExecOutcome, RowSet)> {
        let mut meter = WorkMeter {
            spent: 0.0,
            budget: budget.unwrap_or(f64::INFINITY),
        };
        let mut rows = self.exec_node(query, &plan.root, &mut meter)?;
        rows.proj = query.projection();
        let outcome = ExecOutcome {
            latency: meter.spent,
            rows: rows.len() as u64,
        };
        Ok((outcome, rows))
    }

    /// Like [`Executor::execute_rows`], but folds the join result through
    /// the query's aggregation spec ([`foss_query::AggSpec`], defaulting to
    /// a global `COUNT(*)`) chunk at a time. The returned outcome's
    /// `latency` includes the aggregation charges and its `rows` counts the
    /// aggregate's *output* groups; the fold runs over the final tuple set,
    /// so the result and latency stay bit-identical across [`ExecMode`]s
    /// and worker counts.
    pub fn execute_agg(
        &self,
        query: &Query,
        plan: &PhysicalPlan,
        budget: Option<f64>,
    ) -> Result<(ExecOutcome, crate::agg::AggResult)> {
        let mut meter = WorkMeter {
            spent: 0.0,
            budget: budget.unwrap_or(f64::INFINITY),
        };
        let mut rows = self.exec_node(query, &plan.root, &mut meter)?;
        rows.proj = query.projection();
        let agg = crate::agg::aggregate(self, query, &rows, &mut meter)?;
        let outcome = ExecOutcome {
            latency: meter.spent,
            rows: agg.rows.len() as u64,
        };
        Ok((outcome, agg))
    }

    fn exec_node(&self, query: &Query, node: &PlanNode, meter: &mut WorkMeter) -> Result<RowSet> {
        match node {
            PlanNode::Scan {
                relation, access, ..
            } => {
                let data = self.exec_scan(query, *relation, access, meter)?;
                Ok(RowSet::bare(vec![*relation], data))
            }
            PlanNode::Join {
                method,
                left,
                right,
                edges,
                index_nl,
                ..
            } => {
                let outer = self.exec_node(query, left, meter)?;
                if *index_nl {
                    let PlanNode::Scan { relation, .. } = **right else {
                        return Err(FossError::InvalidPlan(
                            "index nested loop requires a scan inner".into(),
                        ));
                    };
                    return self.index_nl_join(query, outer, relation, edges, meter);
                }
                let inner = self.exec_node(query, right, meter)?;
                match method {
                    JoinMethod::Hash => self.hash_join(query, outer, inner, edges, meter),
                    JoinMethod::Merge => self.merge_join(query, outer, inner, edges, meter),
                    JoinMethod::NestLoop => self.nl_join(query, outer, inner, edges, meter),
                }
            }
        }
    }

    /// Backing column slice for `(rel, col)` — hoisted out of inner loops by
    /// the chunked operators.
    #[inline]
    pub(crate) fn column_slice(&self, query: &Query, rel: usize, col: usize) -> &'a [i64] {
        self.db
            .table(query.relations[rel].table)
            .column(col)
            .values()
    }

    /// Leaf scan shared with the fused tier-2 engine (`crate::fused`): both
    /// tiers must charge and filter identically, so there is exactly one
    /// implementation.
    pub(crate) fn exec_scan(
        &self,
        query: &Query,
        rel: usize,
        access: &AccessPath,
        meter: &mut WorkMeter,
    ) -> Result<Vec<u32>> {
        let relation = &query.relations[rel];
        let table = self.db.table(relation.table);
        let preds = &relation.predicates;
        let p = &self.cost.params;
        match access {
            AccessPath::SeqScan => {
                let n = table.row_count();
                meter.charge(n as f64 * (p.cpu_tuple + p.pred_eval * preds.len() as f64))?;
                let mut out = Vec::new();
                match self.mode {
                    ExecMode::Scalar => {
                        'rows: for row in 0..n {
                            for pr in preds {
                                if !pr.matches(table.column(pr.column()).get(row)) {
                                    continue 'rows;
                                }
                            }
                            out.push(row as u32);
                        }
                    }
                    ExecMode::Chunked => {
                        let cols: Vec<&[i64]> = preds
                            .iter()
                            .map(|pr| table.column(pr.column()).values())
                            .collect();
                        if !preds.is_empty() && self.par_eligible(n) {
                            // The scan's whole charge is already on the
                            // meter; filtering is embarrassingly parallel
                            // and chunk outputs concatenate in chunk order.
                            return Ok(crate::parallel::par_filter_scan(self.par, preds, &cols, n));
                        }
                        let mut sel: Vec<u32> = Vec::with_capacity(CHUNK_SIZE);
                        for start in (0..n).step_by(CHUNK_SIZE) {
                            let end = (start + CHUNK_SIZE).min(n);
                            if preds.is_empty() {
                                out.extend(start as u32..end as u32);
                                continue;
                            }
                            // First predicate streams the contiguous chunk;
                            // the rest refine the selection vector.
                            filter_chunk(&preds[0], cols[0], start, end, &mut sel);
                            for (pr, col) in preds.iter().zip(&cols).skip(1) {
                                refine_selection(pr, col, &mut sel);
                            }
                            out.extend_from_slice(&sel);
                        }
                    }
                }
                Ok(out)
            }
            AccessPath::IndexScan { column } => {
                let driving = preds.iter().find(|pr| pr.column() == *column).copied();
                let residual: Vec<Predicate> = preds
                    .iter()
                    .filter(|pr| pr.column() != *column)
                    .copied()
                    .collect();
                let n = table.row_count() as f64;
                let mut matches: Vec<u32> = match driving {
                    Some(Predicate::Eq { value, .. }) => {
                        if let Some(h) = table.hash_index(*column) {
                            h.lookup(value).to_vec()
                        } else if let Some(s) = table.sorted_index(*column) {
                            s.equal(value).collect()
                        } else {
                            return Err(FossError::InvalidPlan(format!(
                                "index scan on unindexed column {column}"
                            )));
                        }
                    }
                    Some(Predicate::Range { lo, hi, .. }) => {
                        let s = table.sorted_index(*column).ok_or_else(|| {
                            FossError::InvalidPlan(format!(
                                "range index scan on unindexed column {column}"
                            ))
                        })?;
                        s.range(lo, hi).collect()
                    }
                    None => {
                        // Index-only marker without a driving predicate:
                        // degenerate full index scan.
                        (0..table.row_count() as u32).collect()
                    }
                };
                meter.charge(
                    self.cost
                        .index_scan(n, matches.len() as f64, residual.len()),
                )?;
                if !residual.is_empty() {
                    match self.mode {
                        ExecMode::Scalar => {
                            matches.retain(|&row| {
                                residual.iter().all(|pr| {
                                    pr.matches(table.column(pr.column()).get(row as usize))
                                })
                            });
                        }
                        ExecMode::Chunked => {
                            // Predicate-at-a-time over the fetched row ids.
                            for pr in &residual {
                                refine_selection(
                                    pr,
                                    table.column(pr.column()).values(),
                                    &mut matches,
                                );
                            }
                        }
                    }
                }
                matches.sort_unstable();
                Ok(matches)
            }
        }
    }

    /// Value of `(rel, col)` for one side of a join condition.
    #[inline]
    fn value(&self, query: &Query, rel: usize, col: usize, row: u32) -> i64 {
        self.db
            .table(query.relations[rel].table)
            .column(col)
            .get(row as usize)
    }

    fn check_extra_edges(
        &self,
        query: &Query,
        outer: &RowSet,
        outer_tuple: &[u32],
        inner_rel: usize,
        inner_row: u32,
        edges: &[JoinEdge],
    ) -> bool {
        edges.iter().skip(1).all(|e| {
            let lv = self.value(
                query,
                e.left,
                e.left_column,
                outer_tuple[outer.slot_of(e.left)],
            );
            let rv = self.value(query, inner_rel, e.right_column, inner_row);
            lv == rv
        })
    }

    fn emit(out: &mut Vec<u32>, outer_tuple: &[u32], inner_row: u32) {
        out.extend_from_slice(outer_tuple);
        out.push(inner_row);
    }

    /// Hoisted column slices for the non-key join conditions:
    /// `(outer slot, outer column, inner column)` per extra edge.
    pub(crate) fn extra_edge_columns(
        &self,
        query: &Query,
        outer: &RowSet,
        inner_rel: usize,
        edges: &[JoinEdge],
    ) -> EdgeCols<'a> {
        edges
            .iter()
            .skip(1)
            .map(|e| {
                (
                    outer.slot_of(e.left),
                    self.column_slice(query, e.left, e.left_column),
                    self.column_slice(query, inner_rel, e.right_column),
                )
            })
            .collect()
    }

    fn hash_join(
        &self,
        query: &Query,
        outer: RowSet,
        inner: RowSet,
        edges: &[JoinEdge],
        meter: &mut WorkMeter,
    ) -> Result<RowSet> {
        let p = self.cost.params;
        let inner_rel = inner.rels[0];
        if edges.is_empty() {
            return self.cross_join(outer, inner, meter);
        }
        // Build on inner.
        meter.charge(inner.len() as f64 * p.hash_build)?;
        let out = match self.mode {
            ExecMode::Scalar => self.hash_probe_scalar(query, &outer, &inner, edges, meter)?,
            ExecMode::Chunked => {
                // The morsel-parallel probe declines (`None`) when the input
                // is too small or when output charges alone already
                // guarantee a timeout; the sequential probe then handles it
                // from the identical meter state.
                match crate::parallel::try_hash_join(self, query, &outer, &inner, edges, meter)? {
                    Some(data) => data,
                    None => self.hash_probe_chunked(query, &outer, &inner, edges, meter)?,
                }
            }
        };
        let mut rels = outer.rels;
        rels.push(inner_rel);
        Ok(RowSet::bare(rels, out))
    }

    /// Row-at-a-time reference build + probe.
    fn hash_probe_scalar(
        &self,
        query: &Query,
        outer: &RowSet,
        inner: &RowSet,
        edges: &[JoinEdge],
        meter: &mut WorkMeter,
    ) -> Result<Vec<u32>> {
        let p = self.cost.params;
        let inner_rel = inner.rels[0];
        let key = edges[0];
        let mut table: foss_common::FxHashMap<i64, Vec<u32>> = foss_common::FxHashMap::default();
        for &row in &inner.data {
            table
                .entry(self.value(query, inner_rel, key.right_column, row))
                .or_default()
                .push(row);
        }
        let mut out = Vec::new();
        let mut emits = BatchCharge::new(p.output_tuple);
        let lslot = outer.slot_of(key.left);
        let n = outer.len();
        for start in (0..n).step_by(CHUNK_SIZE) {
            let end = (start + CHUNK_SIZE).min(n);
            meter.charge((end - start) as f64 * p.hash_probe)?;
            for i in start..end {
                let t = outer.tuple(i);
                let lv = self.value(query, key.left, key.left_column, t[lslot]);
                if let Some(cands) = table.get(&lv) {
                    for &row in cands {
                        if self.check_extra_edges(query, outer, t, inner_rel, row, edges) {
                            Self::emit(&mut out, t, row);
                            emits.emitted(meter)?;
                        }
                    }
                }
            }
            emits.flush(meter)?;
        }
        Ok(out)
    }

    /// Chunk-at-a-time single-threaded build + probe; output charges
    /// accumulate in chunk quanta so runaway fan-out hits the budget
    /// mid-chunk instead of after a whole chunk has materialised.
    fn hash_probe_chunked(
        &self,
        query: &Query,
        outer: &RowSet,
        inner: &RowSet,
        edges: &[JoinEdge],
        meter: &mut WorkMeter,
    ) -> Result<Vec<u32>> {
        let p = self.cost.params;
        let inner_rel = inner.rels[0];
        let key = edges[0];
        // Gather the build keys through one hoisted column slice.
        let icol = self.column_slice(query, inner_rel, key.right_column);
        let mut table: foss_common::FxHashMap<i64, Vec<u32>> = foss_common::FxHashMap::default();
        for &row in &inner.data {
            table.entry(icol[row as usize]).or_default().push(row);
        }
        let mut out = Vec::new();
        let mut emits = BatchCharge::new(p.output_tuple);
        let stride = outer.stride();
        let lslot = outer.slot_of(key.left);
        let n = outer.len();
        let lcol = self.column_slice(query, key.left, key.left_column);
        let extra = self.extra_edge_columns(query, outer, inner_rel, edges);
        let mut keys: Vec<i64> = Vec::with_capacity(CHUNK_SIZE);
        for start in (0..n).step_by(CHUNK_SIZE) {
            let end = (start + CHUNK_SIZE).min(n);
            meter.charge((end - start) as f64 * p.hash_probe)?;
            // Columnar gather of the probe keys for this chunk.
            keys.clear();
            keys.extend(
                outer.data[start * stride..end * stride]
                    .iter()
                    .skip(lslot)
                    .step_by(stride)
                    .map(|&r| lcol[r as usize]),
            );
            for (off, lv) in keys.iter().enumerate() {
                let Some(cands) = table.get(lv) else { continue };
                let i = start + off;
                let t = &outer.data[i * stride..(i + 1) * stride];
                if extra.is_empty() {
                    // Pure projection: bulk-copy each match.
                    for &row in cands {
                        Self::emit(&mut out, t, row);
                        emits.emitted(meter)?;
                    }
                } else {
                    for &row in cands {
                        if extra
                            .iter()
                            .all(|&(slot, lc, rc)| lc[t[slot] as usize] == rc[row as usize])
                        {
                            Self::emit(&mut out, t, row);
                            emits.emitted(meter)?;
                        }
                    }
                }
            }
            emits.flush(meter)?;
        }
        Ok(out)
    }

    fn merge_join(
        &self,
        query: &Query,
        outer: RowSet,
        inner: RowSet,
        edges: &[JoinEdge],
        meter: &mut WorkMeter,
    ) -> Result<RowSet> {
        let p = self.cost.params;
        let inner_rel = inner.rels[0];
        if edges.is_empty() {
            return self.cross_join(outer, inner, meter);
        }
        let key = edges[0];
        meter.charge(self.cost.sort(outer.len() as f64) + self.cost.sort(inner.len() as f64))?;
        let stride = outer.stride();
        let lslot = outer.slot_of(key.left);
        // Sort outer tuple indexes and inner rows by (key value, position):
        // the positional tie-break keeps equal-key orders identical across
        // engines (unstable sorts would otherwise be free to differ).
        let mut oidx: Vec<usize> = (0..outer.len()).collect();
        let mut irows: Vec<u32> = inner.data.clone();
        let (okeys, ikeys): (Vec<i64>, Vec<i64>) = match self.mode {
            ExecMode::Scalar => {
                oidx.sort_unstable_by_key(|&i| {
                    (
                        self.value(query, key.left, key.left_column, outer.tuple(i)[lslot]),
                        i,
                    )
                });
                irows.sort_unstable_by_key(|&row| {
                    (self.value(query, inner_rel, key.right_column, row), row)
                });
                (
                    oidx.iter()
                        .map(|&i| {
                            self.value(query, key.left, key.left_column, outer.tuple(i)[lslot])
                        })
                        .collect(),
                    irows
                        .iter()
                        .map(|&row| self.value(query, inner_rel, key.right_column, row))
                        .collect(),
                )
            }
            ExecMode::Chunked => {
                // Gather each side's keys once, sort ids by (key, position),
                // then realign the gathered keys with the sorted order.
                let lcol = self.column_slice(query, key.left, key.left_column);
                let icol = self.column_slice(query, inner_rel, key.right_column);
                oidx.sort_unstable_by_key(|&i| (lcol[outer.data[i * stride + lslot] as usize], i));
                irows.sort_unstable_by_key(|&row| (icol[row as usize], row));
                (
                    oidx.iter()
                        .map(|&i| lcol[outer.data[i * stride + lslot] as usize])
                        .collect(),
                    irows.iter().map(|&row| icol[row as usize]).collect(),
                )
            }
        };

        meter.charge((outer.len() + inner.len()) as f64 * p.merge_step)?;
        let extra = match self.mode {
            ExecMode::Scalar => Vec::new(),
            ExecMode::Chunked => self.extra_edge_columns(query, &outer, inner_rel, edges),
        };
        let mut out = Vec::new();
        let mut emits = BatchCharge::new(p.output_tuple);
        let (mut i, mut j) = (0usize, 0usize);
        while i < oidx.len() && j < irows.len() {
            let ov = okeys[i];
            let iv = ikeys[j];
            if ov < iv {
                i += 1;
            } else if ov > iv {
                j += 1;
            } else {
                // Equal group: emit the cartesian product of the group.
                let jstart = j;
                let mut jend = j;
                while jend < irows.len() && ikeys[jend] == ov {
                    jend += 1;
                }
                while i < oidx.len() && okeys[i] == ov {
                    let t = outer.tuple(oidx[i]);
                    for &row in &irows[jstart..jend] {
                        let matched = match self.mode {
                            ExecMode::Scalar => {
                                self.check_extra_edges(query, &outer, t, inner_rel, row, edges)
                            }
                            ExecMode::Chunked => extra
                                .iter()
                                .all(|&(slot, lc, rc)| lc[t[slot] as usize] == rc[row as usize]),
                        };
                        if matched {
                            Self::emit(&mut out, t, row);
                            emits.emitted(meter)?;
                        }
                    }
                    i += 1;
                }
                j = jend;
            }
        }
        emits.flush(meter)?;
        let mut rels = outer.rels;
        rels.push(inner_rel);
        Ok(RowSet::bare(rels, out))
    }

    fn nl_join(
        &self,
        query: &Query,
        outer: RowSet,
        inner: RowSet,
        edges: &[JoinEdge],
        meter: &mut WorkMeter,
    ) -> Result<RowSet> {
        let p = self.cost.params;
        let inner_rel = inner.rels[0];
        if self.mode == ExecMode::Chunked {
            // The morsel-parallel path pre-computes how far the per-chunk
            // pair charges can reach under the budget, so even catastrophic
            // loops do bounded work; it declines (`None`) on small inputs.
            if let Some(data) =
                crate::parallel::try_nl_join(self, query, &outer, &inner, edges, meter)?
            {
                let mut rels = outer.rels;
                rels.push(inner_rel);
                return Ok(RowSet::bare(rels, data));
            }
        }
        let stride = outer.stride();
        let n = outer.len();
        let mut out = Vec::new();
        // Chunked engine: per-edge hoisted outer columns plus inner key
        // values gathered once, aligned with `inner.data`.
        type NlHoisted<'c> = (Vec<(usize, &'c [i64])>, Vec<Vec<i64>>);
        let hoisted: Option<NlHoisted<'_>> = match self.mode {
            ExecMode::Scalar => None,
            ExecMode::Chunked => {
                let lcols: Vec<(usize, &[i64])> = edges
                    .iter()
                    .map(|e| {
                        (
                            outer.slot_of(e.left),
                            self.column_slice(query, e.left, e.left_column),
                        )
                    })
                    .collect();
                let ivals: Vec<Vec<i64>> = edges
                    .iter()
                    .map(|e| {
                        let icol = self.column_slice(query, inner_rel, e.right_column);
                        inner.data.iter().map(|&row| icol[row as usize]).collect()
                    })
                    .collect();
                Some((lcols, ivals))
            }
        };
        let mut emits = BatchCharge::new(p.output_tuple);
        for start in (0..n).step_by(CHUNK_SIZE) {
            let end = (start + CHUNK_SIZE).min(n);
            // Charge a whole inner pass per chunk of outer rows so
            // catastrophic loops hit the budget after the first chunk.
            meter.charge((end - start) as f64 * inner.len() as f64 * p.nl_pair)?;
            match &hoisted {
                None => {
                    for i in start..end {
                        let t = outer.tuple(i);
                        'inner: for &row in &inner.data {
                            for e in edges {
                                let lv = self.value(
                                    query,
                                    e.left,
                                    e.left_column,
                                    t[outer.slot_of(e.left)],
                                );
                                let rv = self.value(query, inner_rel, e.right_column, row);
                                if lv != rv {
                                    continue 'inner;
                                }
                            }
                            Self::emit(&mut out, t, row);
                            emits.emitted(meter)?;
                        }
                    }
                }
                Some((lcols, ivals)) => {
                    for i in start..end {
                        let t = &outer.data[i * stride..(i + 1) * stride];
                        match &ivals[..] {
                            // Single equi-join edge: stream the gathered
                            // inner keys (the common case).
                            [only] => {
                                let (slot, lcol) = lcols[0];
                                let lv = lcol[t[slot] as usize];
                                for (j, &rv) in only.iter().enumerate() {
                                    if rv == lv {
                                        Self::emit(&mut out, t, inner.data[j]);
                                        emits.emitted(meter)?;
                                    }
                                }
                            }
                            _ => {
                                let lvs: Vec<i64> = lcols
                                    .iter()
                                    .map(|&(slot, lc)| lc[t[slot] as usize])
                                    .collect();
                                for (j, &row) in inner.data.iter().enumerate() {
                                    if ivals.iter().zip(&lvs).all(|(iv, &lv)| iv[j] == lv) {
                                        Self::emit(&mut out, t, row);
                                        emits.emitted(meter)?;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            emits.flush(meter)?;
        }
        let mut rels = outer.rels;
        rels.push(inner_rel);
        Ok(RowSet::bare(rels, out))
    }

    fn index_nl_join(
        &self,
        query: &Query,
        outer: RowSet,
        inner_rel: usize,
        edges: &[JoinEdge],
        meter: &mut WorkMeter,
    ) -> Result<RowSet> {
        let p = self.cost.params;
        let key = *edges.first().ok_or_else(|| {
            FossError::InvalidPlan("index nested loop requires a join edge".into())
        })?;
        let relation = &query.relations[inner_rel];
        let table = self.db.table(relation.table);
        let index = table.hash_index(key.right_column).ok_or_else(|| {
            FossError::InvalidPlan(format!(
                "index nested loop on unindexed column {}",
                key.right_column
            ))
        })?;
        let descent = p.index_probe + 0.3 * (table.row_count() as f64).max(2.0).log2();
        let preds = &relation.predicates;
        let stride = outer.stride();
        let lslot = outer.slot_of(key.left);
        let n = outer.len();
        let mut out = Vec::new();
        type InlHoisted<'c> = (&'c [i64], Vec<&'c [i64]>, EdgeCols<'c>);
        let hoisted: Option<InlHoisted<'_>> = match self.mode {
            ExecMode::Scalar => None,
            ExecMode::Chunked => Some((
                self.column_slice(query, key.left, key.left_column),
                preds
                    .iter()
                    .map(|pr| table.column(pr.column()).values())
                    .collect(),
                self.extra_edge_columns(query, &outer, inner_rel, edges),
            )),
        };
        // Fetched index rows and emitted tuples both accrue in chunk quanta:
        // a hot probe key with huge fan-out runs into the budget mid-chunk.
        let mut fetches = BatchCharge::new(p.index_fetch + p.pred_eval * preds.len() as f64);
        let mut emits = BatchCharge::new(p.output_tuple);
        for start in (0..n).step_by(CHUNK_SIZE) {
            let end = (start + CHUNK_SIZE).min(n);
            meter.charge((end - start) as f64 * descent)?;
            match &hoisted {
                None => {
                    for i in start..end {
                        let t = outer.tuple(i);
                        let lv = self.value(query, key.left, key.left_column, t[lslot]);
                        let fetched = index.lookup(lv);
                        fetches.add(fetched.len(), meter)?;
                        'fetch: for &row in fetched {
                            for pr in preds {
                                if !pr.matches(table.column(pr.column()).get(row as usize)) {
                                    continue 'fetch;
                                }
                            }
                            if !self.check_extra_edges(query, &outer, t, inner_rel, row, edges) {
                                continue;
                            }
                            Self::emit(&mut out, t, row);
                            emits.emitted(meter)?;
                        }
                    }
                }
                Some((lcol, pcols, extra)) => {
                    for i in start..end {
                        let t = &outer.data[i * stride..(i + 1) * stride];
                        let lv = lcol[t[lslot] as usize];
                        let fetched = index.lookup(lv);
                        fetches.add(fetched.len(), meter)?;
                        'cfetch: for &row in fetched {
                            for (pr, col) in preds.iter().zip(pcols) {
                                if !pr.matches(col[row as usize]) {
                                    continue 'cfetch;
                                }
                            }
                            if !extra
                                .iter()
                                .all(|&(slot, lc, rc)| lc[t[slot] as usize] == rc[row as usize])
                            {
                                continue;
                            }
                            Self::emit(&mut out, t, row);
                            emits.emitted(meter)?;
                        }
                    }
                }
            }
            fetches.flush(meter)?;
            emits.flush(meter)?;
        }
        let mut rels = outer.rels;
        rels.push(inner_rel);
        Ok(RowSet::bare(rels, out))
    }

    fn cross_join(&self, outer: RowSet, inner: RowSet, meter: &mut WorkMeter) -> Result<RowSet> {
        let p = self.cost.params;
        let inner_rel = inner.rels[0];
        let n = outer.len();
        let mut out = Vec::new();
        for start in (0..n).step_by(CHUNK_SIZE) {
            let end = (start + CHUNK_SIZE).min(n);
            let pairs = (end - start) as f64 * inner.len() as f64;
            // A cross join's output size is known up front, so the whole
            // chunk is charged *before* materialising anything: a
            // catastrophic product aborts without allocating its tuples.
            meter.charge(pairs * p.nl_pair)?;
            meter.charge(pairs * p.output_tuple)?;
            for i in start..end {
                let t = outer.tuple(i);
                for &row in &inner.data {
                    Self::emit(&mut out, t, row);
                }
            }
        }
        let mut rels = outer.rels;
        rels.push(inner_rel);
        Ok(RowSet::bare(rels, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_catalog::{ColumnDef, Schema, TableDef};
    use foss_common::QueryId;
    use foss_optimizer::{CardinalityEstimator, Icp, TraditionalOptimizer, ALL_JOIN_METHODS};
    use foss_query::QueryBuilder;
    use foss_storage::{Column, Table};
    use std::sync::Arc;

    /// Two tables with a known join result for correctness checks:
    /// a has ids 0..10, b has 30 rows with fk = id % 10 → join = 30 rows.
    fn setup() -> (Database, TraditionalOptimizer, Query) {
        setup_sized(10, 30)
    }

    /// Same shape at arbitrary sizes (large sizes span several chunks).
    fn setup_sized(a_rows: i64, b_rows: i64) -> (Database, TraditionalOptimizer, Query) {
        let mut schema = Schema::new();
        schema
            .add_table(TableDef {
                name: "a".into(),
                columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("v")],
            })
            .unwrap();
        schema
            .add_table(TableDef {
                name: "b".into(),
                columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("a_id")],
            })
            .unwrap();
        let schema = Arc::new(schema);
        let a = Table::new(
            "a",
            vec![
                ("id".into(), Column::new((0..a_rows).collect())),
                (
                    "v".into(),
                    Column::new((0..a_rows).map(|i| i % 3).collect()),
                ),
            ],
        )
        .unwrap();
        let b = Table::new(
            "b",
            vec![
                ("id".into(), Column::new((0..b_rows).collect())),
                (
                    "a_id".into(),
                    Column::new((0..b_rows).map(|i| i % a_rows).collect()),
                ),
            ],
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![a, b], 8).unwrap();
        let opt = TraditionalOptimizer::new(
            schema.clone(),
            CardinalityEstimator::new(db.stats_vec()),
            CostModel::default(),
        );
        let mut qb = QueryBuilder::new(QueryId::new(0), 1);
        let ra = qb.relation(schema.table_id("a").unwrap(), "a");
        let rb = qb.relation(schema.table_id("b").unwrap(), "b");
        qb.join(ra, 0, rb, 1);
        let q = qb.build(&schema).unwrap();
        (db, opt, q)
    }

    #[test]
    fn optimized_plan_gives_correct_count() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let exec = Executor::new(&db, *opt.cost_model());
        let out = exec.execute(&q, &plan, None).unwrap();
        assert_eq!(out.rows, 30);
        assert!(out.latency > 0.0);
    }

    #[test]
    fn default_mode_is_chunked() {
        let (db, opt, _) = setup();
        let exec = Executor::new(&db, *opt.cost_model());
        assert_eq!(exec.mode(), ExecMode::Chunked);
        let scalar = Executor::with_mode(&db, *opt.cost_model(), ExecMode::Scalar);
        assert_eq!(scalar.mode(), ExecMode::Scalar);
    }

    #[test]
    fn all_join_methods_agree_on_result_count() {
        let (db, opt, q) = setup();
        let exec = Executor::new(&db, *opt.cost_model());
        for order in [vec![0usize, 1], vec![1, 0]] {
            for m in ALL_JOIN_METHODS {
                let icp = Icp::new(order.clone(), vec![m]).unwrap();
                let plan = opt.optimize_with_hint(&q, &icp).unwrap();
                let out = exec.execute(&q, &plan, None).unwrap();
                assert_eq!(out.rows, 30, "order={order:?} method={m}");
            }
        }
    }

    /// Every (order, method) plan variant produces identical outcomes and
    /// identical result tuples (same rows, same order) in both engines.
    #[test]
    fn chunked_matches_scalar_on_all_plan_variants() {
        // Sizes that exceed CHUNK_SIZE so chunk boundaries are exercised.
        let (db, opt, q) = setup_sized(700, 3000);
        let chunked = Executor::new(&db, *opt.cost_model());
        let scalar = Executor::with_mode(&db, *opt.cost_model(), ExecMode::Scalar);
        for order in [vec![0usize, 1], vec![1, 0]] {
            for m in ALL_JOIN_METHODS {
                let icp = Icp::new(order.clone(), vec![m]).unwrap();
                let plan = opt.optimize_with_hint(&q, &icp).unwrap();
                let (oc, rc) = chunked.execute_rows(&q, &plan, None).unwrap();
                let (os, rs) = scalar.execute_rows(&q, &plan, None).unwrap();
                assert_eq!(oc, os, "outcome diverged: order={order:?} method={m}");
                assert_eq!(rc, rs, "tuples diverged: order={order:?} method={m}");
                assert_eq!(oc.rows, 3000);
            }
        }
    }

    /// The morsel-parallel engine is bit-identical to the single-threaded
    /// chunked engine on every (order, method) variant — results, latency,
    /// and timeout accounting — at several worker counts, including a config
    /// that force-broadcasts every build key.
    #[test]
    fn parallel_matches_sequential_on_all_plan_variants() {
        let (db, opt, q) = setup_sized(3000, 9000);
        let seq =
            Executor::new(&db, *opt.cost_model()).with_parallelism(ParallelConfig::sequential());
        let configs = [
            ParallelConfig {
                workers: 2,
                morsel_chunks: 1,
                ..ParallelConfig::default()
            },
            ParallelConfig {
                workers: 4,
                morsel_chunks: 1,
                ..ParallelConfig::default()
            },
            // Forced hot-key replication: every key broadcast.
            ParallelConfig {
                workers: 3,
                morsel_chunks: 1,
                hot_key_fraction: 0.0,
                hot_key_min: 1,
            },
        ];
        for order in [vec![0usize, 1], vec![1, 0]] {
            for m in ALL_JOIN_METHODS {
                let icp = Icp::new(order.clone(), vec![m]).unwrap();
                let plan = opt.optimize_with_hint(&q, &icp).unwrap();
                let (so, sr) = seq.execute_rows(&q, &plan, None).unwrap();
                let tight = Some(so.latency / 3.0);
                let FossError::Timeout {
                    spent: ss,
                    budget: sb,
                } = seq.execute_rows(&q, &plan, tight).unwrap_err()
                else {
                    panic!("expected sequential timeout")
                };
                for cfg in configs {
                    let par = Executor::new(&db, *opt.cost_model()).with_parallelism(cfg);
                    let (po, pr) = par.execute_rows(&q, &plan, None).unwrap();
                    assert_eq!(so, po, "outcome diverged: {order:?} {m} {cfg:?}");
                    assert_eq!(sr, pr, "tuples diverged: {order:?} {m} {cfg:?}");
                    let FossError::Timeout {
                        spent: ps,
                        budget: pb,
                    } = par.execute_rows(&q, &plan, tight).unwrap_err()
                    else {
                        panic!("expected parallel timeout: {order:?} {m} {cfg:?}")
                    };
                    assert_eq!(
                        (ss, sb),
                        (ps, pb),
                        "timeout diverged: {order:?} {m} {cfg:?}"
                    );
                }
            }
        }
    }

    /// Timeouts report identical spent work in both engines.
    #[test]
    fn chunked_matches_scalar_on_timeout() {
        let (db, opt, q) = setup_sized(700, 3000);
        let chunked = Executor::new(&db, *opt.cost_model());
        let scalar = Executor::with_mode(&db, *opt.cost_model(), ExecMode::Scalar);
        let plan = opt.optimize(&q).unwrap();
        let full = chunked.execute(&q, &plan, None).unwrap();
        let ec = chunked
            .execute(&q, &plan, Some(full.latency / 3.0))
            .unwrap_err();
        let es = scalar
            .execute(&q, &plan, Some(full.latency / 3.0))
            .unwrap_err();
        match (ec, es) {
            (
                FossError::Timeout {
                    spent: sc,
                    budget: bc,
                },
                FossError::Timeout {
                    spent: ss,
                    budget: bs,
                },
            ) => {
                assert_eq!(sc, ss);
                assert_eq!(bc, bs);
            }
            other => panic!("expected twin timeouts, got {other:?}"),
        }
    }

    #[test]
    fn predicates_filter_results() {
        let (db, opt, q0) = setup();
        let schema = db.schema().clone();
        let mut qb = QueryBuilder::new(QueryId::new(1), 1);
        let ra = qb.relation(schema.table_id("a").unwrap(), "a");
        let rb = qb.relation(schema.table_id("b").unwrap(), "b");
        qb.join(ra, 0, rb, 1);
        qb.predicate(
            ra,
            Predicate::Eq {
                column: 1,
                value: 0,
            },
        );
        let q = qb.build(&schema).unwrap();
        let plan = opt.optimize(&q).unwrap();
        let exec = Executor::new(&db, *opt.cost_model());
        let out = exec.execute(&q, &plan, None).unwrap();
        // a.v = 0 keeps ids {0,3,6,9} → 4 ids × 3 b-rows each.
        assert_eq!(out.rows, 12);
        drop(q0);
    }

    #[test]
    fn multi_predicate_scan_matches_scalar_across_chunks() {
        let (db, opt, _) = setup_sized(5000, 16);
        let schema = db.schema().clone();
        let mut qb = QueryBuilder::new(QueryId::new(3), 1);
        let ra = qb.relation(schema.table_id("a").unwrap(), "a");
        qb.predicate(
            ra,
            Predicate::Range {
                column: 0,
                lo: 100,
                hi: 4200,
            },
        );
        qb.predicate(
            ra,
            Predicate::Eq {
                column: 1,
                value: 2,
            },
        );
        let q = qb.build(&schema).unwrap();
        // Force a sequential scan so the chunked filter path runs.
        let plan = PhysicalPlan {
            root: PlanNode::Scan {
                relation: 0,
                access: AccessPath::SeqScan,
                est_rows: 0.0,
                est_cost: 0.0,
            },
        };
        let chunked = Executor::new(&db, *opt.cost_model());
        let scalar = Executor::with_mode(&db, *opt.cost_model(), ExecMode::Scalar);
        let (oc, rc) = chunked.execute_rows(&q, &plan, None).unwrap();
        let (os, rs) = scalar.execute_rows(&q, &plan, None).unwrap();
        assert_eq!(oc, os);
        assert_eq!(rc, rs);
        // ids 100..=4200 with id % 3 == 2 → 1367 rows.
        assert_eq!(oc.rows, (100..=4200).filter(|i| i % 3 == 2).count() as u64);
    }

    /// The morsel-parallel filter scan returns the same row ids in the same
    /// order (and the same latency bits) as the sequential chunked scan.
    #[test]
    fn parallel_scan_matches_sequential() {
        let (db, opt, _) = setup_sized(50_000, 16);
        let schema = db.schema().clone();
        let mut qb = QueryBuilder::new(QueryId::new(7), 1);
        let ra = qb.relation(schema.table_id("a").unwrap(), "a");
        qb.predicate(
            ra,
            Predicate::Range {
                column: 0,
                lo: 1_000,
                hi: 44_000,
            },
        );
        qb.predicate(
            ra,
            Predicate::Eq {
                column: 1,
                value: 1,
            },
        );
        let q = qb.build(&schema).unwrap();
        let plan = PhysicalPlan {
            root: PlanNode::Scan {
                relation: 0,
                access: AccessPath::SeqScan,
                est_rows: 0.0,
                est_cost: 0.0,
            },
        };
        let seq =
            Executor::new(&db, *opt.cost_model()).with_parallelism(ParallelConfig::sequential());
        let (so, sr) = seq.execute_rows(&q, &plan, None).unwrap();
        for workers in [2, 4, 7] {
            let par = Executor::new(&db, *opt.cost_model()).with_parallelism(ParallelConfig {
                workers,
                morsel_chunks: 2,
                ..ParallelConfig::default()
            });
            let (po, pr) = par.execute_rows(&q, &plan, None).unwrap();
            assert_eq!(so.latency.to_bits(), po.latency.to_bits());
            assert_eq!(so, po);
            assert_eq!(sr, pr, "scan rows diverged at {workers} workers");
        }
    }

    #[test]
    fn timeout_aborts_execution() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        let exec = Executor::new(&db, *opt.cost_model());
        let full = exec.execute(&q, &plan, None).unwrap();
        let err = exec
            .execute(&q, &plan, Some(full.latency / 10.0))
            .unwrap_err();
        match err {
            FossError::Timeout { spent, budget } => {
                assert!(spent >= budget);
            }
            other => panic!("expected timeout, got {other}"),
        }
    }

    #[test]
    fn bad_plans_cost_more_work() {
        let (db, opt, q) = setup();
        let exec = Executor::new(&db, *opt.cost_model());
        let good = opt.optimize(&q).unwrap();
        // Force a naive nested loop with the big table outer: strictly worse.
        let bad_icp = Icp::new(vec![1, 0], vec![JoinMethod::NestLoop]).unwrap();
        let bad = opt.optimize_with_hint(&q, &bad_icp).unwrap();
        let lg = exec.execute(&q, &good, None).unwrap().latency;
        let lb = exec.execute(&q, &bad, None).unwrap().latency;
        assert!(lb > lg, "bad NL ({lb}) should exceed optimized plan ({lg})");
    }

    #[test]
    fn execution_is_deterministic() {
        let (db, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        for mode in [ExecMode::Chunked, ExecMode::Scalar] {
            let exec = Executor::with_mode(&db, *opt.cost_model(), mode);
            let a = exec.execute(&q, &plan, None).unwrap();
            let b = exec.execute(&q, &plan, None).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn single_relation_scan_counts_rows() {
        let (db, opt, _) = setup();
        let schema = db.schema().clone();
        let mut qb = QueryBuilder::new(QueryId::new(2), 1);
        let ra = qb.relation(schema.table_id("a").unwrap(), "a");
        qb.predicate(
            ra,
            Predicate::Range {
                column: 0,
                lo: 2,
                hi: 5,
            },
        );
        let q = qb.build(&schema).unwrap();
        let plan = opt.optimize(&q).unwrap();
        let exec = Executor::new(&db, *opt.cost_model());
        assert_eq!(exec.execute(&q, &plan, None).unwrap().rows, 4);
    }

    /// The setup() join with COUNT/SUM/MIN/MAX over `b.id`, optionally
    /// grouped by `a.v`.
    fn agg_query(db: &Database, qid: usize, group: bool) -> Query {
        use foss_query::{AggFunc, ColRef};
        let schema = db.schema().clone();
        let mut qb = QueryBuilder::new(QueryId::new(qid), 1);
        let ra = qb.relation(schema.table_id("a").unwrap(), "a");
        let rb = qb.relation(schema.table_id("b").unwrap(), "b");
        qb.join(ra, 0, rb, 1);
        if group {
            qb.group_by(ra, 1);
        }
        let b_id = ColRef { rel: rb, column: 0 };
        qb.aggregate(AggFunc::Count)
            .aggregate(AggFunc::Sum(b_id))
            .aggregate(AggFunc::Min(b_id))
            .aggregate(AggFunc::Max(b_id));
        qb.build(&schema).unwrap()
    }

    #[test]
    fn group_by_aggregates_match_hand_computed_values() {
        let (db, opt, _) = setup();
        let q = agg_query(&db, 11, true);
        let plan = opt.optimize(&q).unwrap();
        let exec = Executor::new(&db, *opt.cost_model());
        let (out, agg) = exec.execute_agg(&q, &plan, None).unwrap();
        // a.v = id % 3 groups the 10 a-rows into {0,3,6,9}, {1,4,7},
        // {2,5,8}; each a-row matches b ids {k, k+10, k+20}.
        let expect = [(0, 12, 174, 0, 29), (1, 9, 126, 1, 27), (2, 9, 135, 2, 28)];
        assert_eq!(out.rows, 3);
        assert_eq!(agg.rows.len(), 3);
        for (row, (key, count, sum, min, max)) in agg.rows.iter().zip(expect) {
            assert_eq!(row.group, Some(key));
            assert_eq!(
                row.values,
                vec![Some(count), Some(sum), Some(min), Some(max)]
            );
        }
    }

    #[test]
    fn aggregation_is_engine_independent() {
        let (db, opt, _) = setup_sized(3000, 9000);
        let q = agg_query(&db, 12, true);
        let plan = opt.optimize(&q).unwrap();
        let chunked = Executor::new(&db, *opt.cost_model());
        let scalar = Executor::with_mode(&db, *opt.cost_model(), ExecMode::Scalar);
        let par = Executor::new(&db, *opt.cost_model()).with_parallelism(ParallelConfig {
            workers: 3,
            morsel_chunks: 1,
            ..ParallelConfig::default()
        });
        let (oc, rc) = chunked.execute_agg(&q, &plan, None).unwrap();
        let (os, rs) = scalar.execute_agg(&q, &plan, None).unwrap();
        let (op, rp) = par.execute_agg(&q, &plan, None).unwrap();
        assert_eq!(rc, rs);
        assert_eq!(rc, rp);
        assert_eq!(oc.latency.to_bits(), os.latency.to_bits());
        assert_eq!(oc.latency.to_bits(), op.latency.to_bits());
    }

    #[test]
    fn global_aggregate_on_empty_input_yields_one_row() {
        let (db, opt, _) = setup();
        let schema = db.schema().clone();
        let mut qb = QueryBuilder::new(QueryId::new(13), 1);
        let ra = qb.relation(schema.table_id("a").unwrap(), "a");
        let rb = qb.relation(schema.table_id("b").unwrap(), "b");
        qb.join(ra, 0, rb, 1);
        qb.predicate(
            ra,
            Predicate::Range {
                column: 0,
                lo: 100,
                hi: 200,
            },
        );
        use foss_query::{AggFunc, ColRef};
        let b_id = ColRef { rel: rb, column: 0 };
        qb.aggregate(AggFunc::Count)
            .aggregate(AggFunc::Sum(b_id))
            .aggregate(AggFunc::Min(b_id))
            .aggregate(AggFunc::Max(b_id));
        let q = qb.build(&schema).unwrap();
        let plan = opt.optimize(&q).unwrap();
        let exec = Executor::new(&db, *opt.cost_model());
        let (out, agg) = exec.execute_agg(&q, &plan, None).unwrap();
        assert_eq!(out.rows, 1);
        assert_eq!(agg.rows.len(), 1);
        assert_eq!(agg.rows[0].group, None);
        // COUNT and SUM fold to zero; MIN/MAX are undefined on no rows.
        assert_eq!(agg.rows[0].values, vec![Some(0), Some(0), None, None]);
    }

    #[test]
    fn execute_rows_threads_the_projection_list() {
        use foss_query::ColRef;
        let (db, opt, _) = setup();
        let q = agg_query(&db, 14, true);
        let plan = opt.optimize(&q).unwrap();
        let exec = Executor::new(&db, *opt.cost_model());
        let (_, rows) = exec.execute_rows(&q, &plan, None).unwrap();
        // Group key first, then agg inputs, deduplicated in first-use order.
        assert_eq!(
            rows.proj,
            vec![ColRef { rel: 0, column: 1 }, ColRef { rel: 1, column: 0 }]
        );
        // A plain COUNT(*) query projects nothing.
        let (db2, opt2, q2) = setup();
        let plan2 = opt2.optimize(&q2).unwrap();
        let exec2 = Executor::new(&db2, *opt2.cost_model());
        let (_, rows2) = exec2.execute_rows(&q2, &plan2, None).unwrap();
        assert!(rows2.proj.is_empty());
    }

    #[test]
    fn aggregation_charges_count_toward_the_budget() {
        let (db, opt, _) = setup();
        let q = agg_query(&db, 15, true);
        let plan = opt.optimize(&q).unwrap();
        let exec = Executor::new(&db, *opt.cost_model());
        let (out, _) = exec.execute_agg(&q, &plan, None).unwrap();
        let bare = exec.execute(&q, &plan, None).unwrap();
        assert!(out.latency > bare.latency);
        // A budget between the two must time out inside the aggregation.
        let mid = (bare.latency + out.latency) / 2.0;
        let err = exec.execute_agg(&q, &plan, Some(mid)).unwrap_err();
        assert!(matches!(err, FossError::Timeout { .. }));
    }
}
