//! The cooperative scheduler at the heart of `foss_check`.
//!
//! A *schedule* runs the user closure on real OS threads, but only one model
//! thread ever executes at a time: every instrumented synchronization
//! operation is a *scheduling point* where the kernel consults a [`Decider`]
//! to pick which runnable thread proceeds next. Because the decider is the
//! only source of nondeterminism, a schedule is fully described by the
//! sequence of choices it made — which is what makes exhaustive enumeration
//! and seed/trace replay possible.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex};

/// Panic payload used to unwind model threads when a schedule is being torn
/// down (failure elsewhere, deadlock, nondeterminism). Never escapes
/// [`run_schedule`].
pub(crate) struct AbortSchedule;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Runtime>, usize)>> = const { RefCell::new(None) };
}

/// The runtime + thread id of the calling thread, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Runtime>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// True when the calling thread is executing inside a model schedule.
pub fn model_active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn set_current(v: Option<(Arc<Runtime>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// One-slot token parker: each model thread blocks here whenever it does not
/// hold the execution token.
struct Parker {
    flag: OsMutex<bool>,
    cv: OsCondvar,
}

impl Parker {
    fn new() -> Self {
        Parker {
            flag: OsMutex::new(false),
            cv: OsCondvar::new(),
        }
    }

    fn park(&self) {
        let mut g = self.flag.lock().unwrap_or_else(|e| e.into_inner());
        while !*g {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        *g = false;
    }

    fn unpark(&self) {
        let mut g = self.flag.lock().unwrap_or_else(|e| e.into_inner());
        *g = true;
        self.cv.notify_one();
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    /// Can be scheduled (may be parked waiting for the token).
    Runnable,
    BlockedMutex(usize),
    BlockedRwRead(usize),
    BlockedRwWrite(usize),
    /// Parked in a condvar wait; `timed` waits are additionally schedulable
    /// as "deliver the timeout now" options.
    BlockedCondvar {
        cv: usize,
        timed: bool,
    },
    BlockedJoin(usize),
    Finished,
}

struct ThreadSt {
    status: Status,
    parker: Arc<Parker>,
    /// Set when the thread is woken out of a condvar wait: `true` iff the
    /// wakeup was a delivered timeout rather than a notify.
    cv_timed_out: bool,
}

pub(crate) enum Object {
    Mutex {
        held_by: Option<usize>,
    },
    RwLock {
        writer: Option<usize>,
        readers: usize,
    },
    /// Wait queue in arrival order; notify_one wakes the oldest waiter.
    Condvar {
        queue: Vec<usize>,
    },
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Choice {
    pub chosen: usize,
    pub options: usize,
}

/// Source of scheduling decisions for one schedule.
pub(crate) enum Decider {
    /// Depth-first enumeration: replay the prefix in `stack`, then always
    /// take branch 0, recording new choice points for later backtracking.
    Dfs { stack: Vec<Choice>, pos: usize },
    /// Seed-replayable pseudo-random choices (splitmix64 stream).
    Random { state: u64, choices: Vec<Choice> },
    /// Exact replay of a recorded choice sequence.
    Replay { choices: Vec<usize>, pos: usize },
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Decider {
    fn choose(&mut self, n: usize) -> Result<usize, String> {
        debug_assert!(n >= 2);
        match self {
            Decider::Dfs { stack, pos } => {
                let idx = if *pos < stack.len() {
                    let c = stack[*pos];
                    if c.options != n {
                        return Err(format!(
                            "nondeterministic execution: choice point {} saw {} options, expected {} \
                             (model closures must not branch on wall-clock time or OS randomness)",
                            *pos, n, c.options
                        ));
                    }
                    c.chosen
                } else {
                    stack.push(Choice {
                        chosen: 0,
                        options: n,
                    });
                    0
                };
                *pos += 1;
                Ok(idx)
            }
            Decider::Random { state, choices } => {
                *state = splitmix64(*state);
                let idx = (*state % n as u64) as usize;
                choices.push(Choice {
                    chosen: idx,
                    options: n,
                });
                Ok(idx)
            }
            Decider::Replay { choices, pos } => {
                let idx = match choices.get(*pos) {
                    Some(&c) if c < n => c,
                    Some(&c) => {
                        return Err(format!(
                            "replay diverged: choice point {} wants branch {} of {} options",
                            *pos, c, n
                        ));
                    }
                    // Replays of a failing schedule may legitimately run past
                    // the recorded prefix (the failure unwinds later than the
                    // last choice); default to branch 0 deterministically.
                    None => 0,
                };
                *pos += 1;
                Ok(idx)
            }
        }
    }

    fn taken(&self) -> Vec<usize> {
        match self {
            Decider::Dfs { stack, .. } => stack.iter().map(|c| c.chosen).collect(),
            Decider::Random { choices, .. } => choices.iter().map(|c| c.chosen).collect(),
            Decider::Replay { choices, .. } => choices.clone(),
        }
    }
}

pub(crate) struct Kernel {
    threads: Vec<ThreadSt>,
    objects: Vec<Object>,
    decider: Decider,
    trace: Vec<String>,
    steps: usize,
    max_steps: usize,
    /// Timeouts already delivered this schedule (see [`Runtime::enabled`]).
    timeouts_delivered: usize,
    max_timeouts: usize,
    pub(crate) abort: bool,
    failure: Option<String>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Runtime {
    kernel: OsMutex<Kernel>,
    /// Signalled whenever a thread finishes or the schedule aborts; the
    /// controller waits on it (paired with the `kernel` mutex).
    done: OsCondvar,
}

/// Everything the explorer needs back from one finished schedule.
pub(crate) struct ScheduleOutcome {
    pub failure: Option<String>,
    pub trace: Vec<String>,
    pub decider: Decider,
}

impl Runtime {
    fn lock(&self) -> std::sync::MutexGuard<'_, Kernel> {
        self.kernel.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record a failure, mark the schedule aborted, wake the controller, and
    /// unwind the calling model thread.
    fn fail_now(&self, mut k: std::sync::MutexGuard<'_, Kernel>, msg: String) -> ! {
        if k.failure.is_none() {
            k.failure = Some(msg);
        }
        k.abort = true;
        self.done.notify_all();
        drop(k);
        panic::panic_any(AbortSchedule);
    }

    /// The enabled set: runnable threads first, then timed condvar waiters
    /// (choosing one of the latter means "the timeout fires now").
    ///
    /// Preemptive timeout delivery — firing a timeout while other threads
    /// could still run — is budgeted per schedule, because code that re-waits
    /// after a timeout would otherwise make the schedule tree infinite. When
    /// *only* timed waiters remain the budget is ignored: real time would
    /// pass and the timeout genuinely fires (an endless re-wait loop is then
    /// caught by the step bound).
    fn enabled(k: &Kernel) -> Vec<usize> {
        let mut out: Vec<usize> = k
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if out.is_empty() || k.timeouts_delivered < k.max_timeouts {
            out.extend(
                k.threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| matches!(t.status, Status::BlockedCondvar { timed: true, .. }))
                    .map(|(i, _)| i),
            );
        }
        out
    }

    /// Pick and activate the next thread. `me` is the calling thread; if the
    /// pick is someone else, they are unparked and the caller must park.
    /// Returns the chosen tid.
    fn pick_next(&self, k: &mut std::sync::MutexGuard<'_, Kernel>, me: usize) -> usize {
        let enabled = Self::enabled(k);
        if enabled.is_empty() {
            let held: Vec<String> = k
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status != Status::Finished)
                .map(|(i, t)| format!("t{i} {:?}", t.status))
                .collect();
            let msg = format!("deadlock: no runnable threads ({})", held.join(", "));
            // fail_now wants the guard by value; re-borrowing is not possible
            // through the &mut, so inline the failure path here.
            if k.failure.is_none() {
                k.failure = Some(msg);
            }
            k.abort = true;
            self.done.notify_all();
            panic::panic_any(AbortSchedule);
        }
        let idx = if enabled.len() == 1 {
            0
        } else {
            match k.decider.choose(enabled.len()) {
                Ok(i) => i,
                Err(msg) => {
                    if k.failure.is_none() {
                        k.failure = Some(msg);
                    }
                    k.abort = true;
                    self.done.notify_all();
                    panic::panic_any(AbortSchedule);
                }
            }
        };
        let next = enabled[idx];
        // Delivering a timeout to a timed condvar waiter.
        if let Status::BlockedCondvar { cv, timed: true } = k.threads[next].status {
            if let Object::Condvar { queue } = &mut k.objects[cv] {
                queue.retain(|&t| t != next);
            }
            k.threads[next].status = Status::Runnable;
            k.threads[next].cv_timed_out = true;
            k.timeouts_delivered += 1;
        }
        if next != me {
            k.threads[next].parker.unpark();
        }
        next
    }

    /// Park until this thread is handed the token again; unwinds if the
    /// schedule aborted in the meantime.
    fn park_until_active(self: &Arc<Self>, me: usize) {
        let parker = {
            let k = self.lock();
            Arc::clone(&k.threads[me].parker)
        };
        parker.park();
        let k = self.lock();
        if k.abort && !std::thread::panicking() {
            drop(k);
            panic::panic_any(AbortSchedule);
        }
    }

    /// A scheduling point: the calling thread offers the token to the
    /// decider, parks if another thread is picked, and records `label` in the
    /// trace once it proceeds.
    pub(crate) fn schedule_point(self: &Arc<Self>, me: usize, label: &str) {
        if std::thread::panicking() {
            return;
        }
        let mut k = self.lock();
        if k.abort {
            drop(k);
            panic::panic_any(AbortSchedule);
        }
        let next = self.pick_next(&mut k, me);
        if next != me {
            drop(k);
            self.park_until_active(me);
            k = self.lock();
        }
        k.steps += 1;
        if k.steps > k.max_steps {
            let msg = format!(
                "step bound exceeded ({} scheduling points; possible livelock)",
                k.max_steps
            );
            self.fail_now(k, msg);
        }
        let line = format!("t{me} {label}");
        k.trace.push(line);
    }

    /// Yield the token without holding it: the caller has already marked
    /// itself blocked; pick another thread and park. On return the caller is
    /// active again. The pick can land back on the caller when it is a timed
    /// condvar waiter (its own timeout fires before anyone else runs), in
    /// which case it simply keeps the token.
    fn block_and_park(self: &Arc<Self>, k: std::sync::MutexGuard<'_, Kernel>, me: usize) {
        let mut k = k;
        let next = self.pick_next(&mut k, me);
        if next != me {
            drop(k);
            self.park_until_active(me);
        }
    }

    // ---- object registration ------------------------------------------------

    pub(crate) fn register_mutex(self: &Arc<Self>) -> usize {
        let mut k = self.lock();
        k.objects.push(Object::Mutex { held_by: None });
        k.objects.len() - 1
    }

    pub(crate) fn register_rwlock(self: &Arc<Self>) -> usize {
        let mut k = self.lock();
        k.objects.push(Object::RwLock {
            writer: None,
            readers: 0,
        });
        k.objects.len() - 1
    }

    pub(crate) fn register_condvar(self: &Arc<Self>) -> usize {
        let mut k = self.lock();
        k.objects.push(Object::Condvar { queue: Vec::new() });
        k.objects.len() - 1
    }

    // ---- mutex --------------------------------------------------------------

    /// Acquire after an initial scheduling point. Blocks (model-level) while
    /// held by someone else.
    pub(crate) fn mutex_lock(self: &Arc<Self>, me: usize, id: usize) {
        self.schedule_point(me, &format!("lock m{id}"));
        self.mutex_relock(me, id);
    }

    /// Acquire without a leading scheduling point (used on condvar wakeup,
    /// where the wakeup itself was the scheduling decision).
    pub(crate) fn mutex_relock(self: &Arc<Self>, me: usize, id: usize) {
        if std::thread::panicking() {
            return;
        }
        loop {
            let mut k = self.lock();
            if k.abort {
                drop(k);
                panic::panic_any(AbortSchedule);
            }
            match &mut k.objects[id] {
                Object::Mutex { held_by } => {
                    if held_by.is_none() {
                        *held_by = Some(me);
                        return;
                    }
                }
                _ => unreachable!("object {id} is not a mutex"),
            }
            k.threads[me].status = Status::BlockedMutex(id);
            self.block_and_park(k, me);
            // Woken by a release: retry (another thread may have barged in).
        }
    }

    pub(crate) fn mutex_try_lock(self: &Arc<Self>, me: usize, id: usize) -> bool {
        self.schedule_point(me, &format!("try_lock m{id}"));
        if std::thread::panicking() {
            return true;
        }
        let mut k = self.lock();
        match &mut k.objects[id] {
            Object::Mutex { held_by } => {
                if held_by.is_none() {
                    *held_by = Some(me);
                    true
                } else {
                    false
                }
            }
            _ => unreachable!("object {id} is not a mutex"),
        }
    }

    /// Release bookkeeping; never a scheduling point, and idempotent so that
    /// guard drops on unwinding paths stay safe.
    pub(crate) fn mutex_unlock(self: &Arc<Self>, me: usize, id: usize) {
        let mut k = self.lock();
        match &mut k.objects[id] {
            Object::Mutex { held_by } => {
                if *held_by != Some(me) {
                    return;
                }
                *held_by = None;
            }
            _ => unreachable!("object {id} is not a mutex"),
        }
        for t in k.threads.iter_mut() {
            if t.status == Status::BlockedMutex(id) {
                t.status = Status::Runnable;
            }
        }
    }

    // ---- rwlock -------------------------------------------------------------

    pub(crate) fn rw_read(self: &Arc<Self>, me: usize, id: usize) {
        self.schedule_point(me, &format!("read rw{id}"));
        if std::thread::panicking() {
            return;
        }
        loop {
            let mut k = self.lock();
            if k.abort {
                drop(k);
                panic::panic_any(AbortSchedule);
            }
            match &mut k.objects[id] {
                Object::RwLock { writer, readers } => {
                    if writer.is_none() {
                        *readers += 1;
                        return;
                    }
                }
                _ => unreachable!("object {id} is not a rwlock"),
            }
            k.threads[me].status = Status::BlockedRwRead(id);
            self.block_and_park(k, me);
        }
    }

    pub(crate) fn rw_read_unlock(self: &Arc<Self>, _me: usize, id: usize) {
        let mut k = self.lock();
        let now_free = match &mut k.objects[id] {
            Object::RwLock { readers, .. } => {
                *readers = readers.saturating_sub(1);
                *readers == 0
            }
            _ => unreachable!("object {id} is not a rwlock"),
        };
        if now_free {
            for t in k.threads.iter_mut() {
                if t.status == Status::BlockedRwWrite(id) {
                    t.status = Status::Runnable;
                }
            }
        }
    }

    pub(crate) fn rw_write(self: &Arc<Self>, me: usize, id: usize) {
        self.schedule_point(me, &format!("write rw{id}"));
        if std::thread::panicking() {
            return;
        }
        loop {
            let mut k = self.lock();
            if k.abort {
                drop(k);
                panic::panic_any(AbortSchedule);
            }
            match &mut k.objects[id] {
                Object::RwLock { writer, readers } => {
                    if writer.is_none() && *readers == 0 {
                        *writer = Some(me);
                        return;
                    }
                }
                _ => unreachable!("object {id} is not a rwlock"),
            }
            k.threads[me].status = Status::BlockedRwWrite(id);
            self.block_and_park(k, me);
        }
    }

    pub(crate) fn rw_write_unlock(self: &Arc<Self>, me: usize, id: usize) {
        let mut k = self.lock();
        match &mut k.objects[id] {
            Object::RwLock { writer, .. } => {
                if *writer != Some(me) {
                    return;
                }
                *writer = None;
            }
            _ => unreachable!("object {id} is not a rwlock"),
        }
        for t in k.threads.iter_mut() {
            if matches!(t.status, Status::BlockedRwRead(i) | Status::BlockedRwWrite(i) if i == id) {
                t.status = Status::Runnable;
            }
        }
    }

    // ---- condvar ------------------------------------------------------------

    /// Atomically release mutex `mid`, wait on condvar `cid`, then reacquire.
    /// Returns `true` iff a timeout was delivered (only possible when
    /// `timed`). Timeouts are modeled abstractly: any timed waiter can have
    /// its timeout fire at any scheduling point, so real durations are
    /// irrelevant to the model.
    pub(crate) fn condvar_wait(
        self: &Arc<Self>,
        me: usize,
        cid: usize,
        mid: usize,
        timed: bool,
    ) -> bool {
        if std::thread::panicking() {
            return false;
        }
        let mut k = self.lock();
        if k.abort {
            drop(k);
            panic::panic_any(AbortSchedule);
        }
        let line = format!(
            "t{me} {} cv{cid} (releases m{mid})",
            if timed { "wait_timeout" } else { "wait" }
        );
        k.trace.push(line);
        // Release the mutex.
        match &mut k.objects[mid] {
            Object::Mutex { held_by } => {
                if *held_by == Some(me) {
                    *held_by = None;
                }
            }
            _ => unreachable!("object {mid} is not a mutex"),
        }
        for t in k.threads.iter_mut() {
            if t.status == Status::BlockedMutex(mid) {
                t.status = Status::Runnable;
            }
        }
        match &mut k.objects[cid] {
            Object::Condvar { queue } => queue.push(me),
            _ => unreachable!("object {cid} is not a condvar"),
        }
        k.threads[me].status = Status::BlockedCondvar { cv: cid, timed };
        k.threads[me].cv_timed_out = false;
        self.block_and_park(k, me);
        let timed_out = {
            let k = self.lock();
            k.threads[me].cv_timed_out
        };
        self.mutex_relock(me, mid);
        timed_out
    }

    pub(crate) fn condvar_notify(self: &Arc<Self>, me: usize, cid: usize, all: bool) {
        self.schedule_point(
            me,
            &format!("{} cv{cid}", if all { "notify_all" } else { "notify_one" }),
        );
        if std::thread::panicking() {
            return;
        }
        let mut k = self.lock();
        let woken: Vec<usize> = match &mut k.objects[cid] {
            Object::Condvar { queue } => {
                if all {
                    std::mem::take(queue)
                } else if queue.is_empty() {
                    Vec::new()
                } else {
                    vec![queue.remove(0)]
                }
            }
            _ => unreachable!("object {cid} is not a condvar"),
        };
        for t in woken {
            k.threads[t].status = Status::Runnable;
            k.threads[t].cv_timed_out = false;
        }
    }

    // ---- threads ------------------------------------------------------------

    /// Register a new model thread and spawn its OS carrier; the carrier
    /// parks until first scheduled.
    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        me: usize,
        body: impl FnOnce() + Send + 'static,
    ) -> usize {
        let tid = {
            let mut k = self.lock();
            k.threads.push(ThreadSt {
                status: Status::Runnable,
                parker: Arc::new(Parker::new()),
                cv_timed_out: false,
            });
            k.threads.len() - 1
        };
        let rt = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("foss-check-t{tid}"))
            .spawn(move || {
                set_current(Some((Arc::clone(&rt), tid)));
                // The initial park must sit inside catch_unwind: teardown of
                // a never-scheduled thread unwinds from the park itself, and
                // the kernel still needs to see it reach Finished.
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    rt.park_until_active(tid);
                    body();
                }));
                rt.thread_finished(tid, result);
                set_current(None);
            })
            .expect("spawn model carrier thread");
        let mut k = self.lock();
        k.os_handles.push(handle);
        drop(k);
        // The child is now schedulable; let the decider interleave it.
        self.schedule_point(me, &format!("spawn t{tid}"));
        tid
    }

    /// Model-level join: block until `target` finishes.
    pub(crate) fn join_thread(self: &Arc<Self>, me: usize, target: usize) {
        self.schedule_point(me, &format!("join t{target}"));
        if std::thread::panicking() {
            return;
        }
        let mut k = self.lock();
        if k.threads[target].status != Status::Finished {
            k.threads[me].status = Status::BlockedJoin(target);
            self.block_and_park(k, me);
        }
    }

    /// Called by a model thread's carrier once its body has returned or
    /// panicked; hands the token onward or reports the failure.
    fn thread_finished(
        self: &Arc<Self>,
        me: usize,
        result: Result<(), Box<dyn std::any::Any + Send>>,
    ) {
        let mut k = self.lock();
        k.threads[me].status = Status::Finished;
        for t in k.threads.iter_mut() {
            if t.status == Status::BlockedJoin(me) {
                t.status = Status::Runnable;
            }
        }
        match result {
            Err(p) if p.is::<AbortSchedule>() => {
                // Teardown unwind: the controller drives remaining cleanup.
                self.done.notify_all();
            }
            Err(p) => {
                let msg = panic_message(p.as_ref());
                if k.failure.is_none() {
                    let trace_tail = format!("t{me} panicked: {msg}");
                    k.trace.push(trace_tail);
                    k.failure = Some(msg);
                }
                k.abort = true;
                self.done.notify_all();
            }
            Ok(()) => {
                if k.abort {
                    self.done.notify_all();
                    return;
                }
                let enabled = Self::enabled(&k);
                if enabled.is_empty() {
                    if k.threads.iter().any(|t| t.status != Status::Finished) {
                        let held: Vec<String> = k
                            .threads
                            .iter()
                            .enumerate()
                            .filter(|(_, t)| t.status != Status::Finished)
                            .map(|(i, t)| format!("t{i} {:?}", t.status))
                            .collect();
                        if k.failure.is_none() {
                            k.failure = Some(format!(
                                "deadlock: no runnable threads ({})",
                                held.join(", ")
                            ));
                        }
                        k.abort = true;
                    }
                    self.done.notify_all();
                } else {
                    let idx = if enabled.len() == 1 {
                        0
                    } else {
                        match k.decider.choose(enabled.len()) {
                            Ok(i) => i,
                            Err(msg) => {
                                if k.failure.is_none() {
                                    k.failure = Some(msg);
                                }
                                k.abort = true;
                                self.done.notify_all();
                                return;
                            }
                        }
                    };
                    let next = enabled[idx];
                    if let Status::BlockedCondvar { cv, timed: true } = k.threads[next].status {
                        if let Object::Condvar { queue } = &mut k.objects[cv] {
                            queue.retain(|&t| t != next);
                        }
                        k.threads[next].status = Status::Runnable;
                        k.threads[next].cv_timed_out = true;
                        k.timeouts_delivered += 1;
                    }
                    k.threads[next].parker.unpark();
                    self.done.notify_all();
                }
            }
        }
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Run the user closure once under `decider`, returning the outcome (the
/// decider is handed back so DFS state survives across schedules).
pub(crate) fn run_schedule(
    decider: Decider,
    max_steps: usize,
    max_timeouts: usize,
    f: Arc<dyn Fn() + Send + Sync>,
) -> ScheduleOutcome {
    let rt = Arc::new(Runtime {
        kernel: OsMutex::new(Kernel {
            threads: Vec::new(),
            objects: Vec::new(),
            decider,
            trace: Vec::new(),
            steps: 0,
            max_steps,
            timeouts_delivered: 0,
            max_timeouts,
            abort: false,
            failure: None,
            os_handles: Vec::new(),
        }),
        done: OsCondvar::new(),
    });

    // Thread 0 runs the user closure itself.
    {
        let mut k = rt.lock();
        k.threads.push(ThreadSt {
            status: Status::Runnable,
            parker: Arc::new(Parker::new()),
            cv_timed_out: false,
        });
    }
    let rt0 = Arc::clone(&rt);
    let root = std::thread::Builder::new()
        .name("foss-check-t0".to_string())
        .spawn(move || {
            set_current(Some((Arc::clone(&rt0), 0)));
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                rt0.park_until_active(0);
                f();
            }));
            rt0.thread_finished(0, result);
            set_current(None);
        })
        .expect("spawn model root thread");

    // Hand t0 the token.
    {
        let k = rt.lock();
        k.threads[0].parker.unpark();
        drop(k);
    }

    // Controller: wait for completion, driving teardown after an abort.
    let mut k = rt.lock();
    loop {
        if k.threads.iter().all(|t| t.status == Status::Finished) {
            break;
        }
        if k.abort {
            let pending: Vec<usize> = k
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status != Status::Finished)
                .map(|(i, _)| i)
                .collect();
            for tid in pending {
                if k.threads[tid].status == Status::Finished {
                    continue;
                }
                k.threads[tid].parker.unpark();
                while k.threads[tid].status != Status::Finished {
                    k = rt.done.wait(k).unwrap_or_else(|e| e.into_inner());
                }
            }
            continue;
        }
        k = rt.done.wait(k).unwrap_or_else(|e| e.into_inner());
    }
    let handles = std::mem::take(&mut k.os_handles);
    let failure = k.failure.take();
    let trace = std::mem::take(&mut k.trace);
    let decider = std::mem::replace(
        &mut k.decider,
        Decider::Replay {
            choices: Vec::new(),
            pos: 0,
        },
    );
    drop(k);
    drop(root.join());
    for h in handles {
        drop(h.join());
    }
    ScheduleOutcome {
        failure,
        trace,
        decider,
    }
}

impl Decider {
    pub(crate) fn taken_choices(&self) -> Vec<usize> {
        self.taken()
    }
}
