//! Model-aware thread spawn/join. On a model thread, `spawn` registers a new
//! schedulable thread with the kernel; anywhere else it delegates to
//! `std::thread`, so code written against this module works unchanged outside
//! a schedule.

use crate::runtime::{current, Runtime};
use std::sync::{Arc, Mutex as OsMutex};

enum Inner<T> {
    Model {
        rt: Arc<Runtime>,
        tid: usize,
        ret: Arc<OsMutex<Option<T>>>,
    },
    Real(std::thread::JoinHandle<T>),
}

pub struct JoinHandle<T> {
    inner: Inner<T>,
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current() {
        Some((rt, me)) => {
            let ret: Arc<OsMutex<Option<T>>> = Arc::new(OsMutex::new(None));
            let slot = Arc::clone(&ret);
            let tid = rt.spawn_thread(me, move || {
                let v = f();
                *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
            });
            JoinHandle {
                inner: Inner::Model { rt, tid, ret },
            }
        }
        None => JoinHandle {
            inner: Inner::Real(std::thread::spawn(f)),
        },
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its value. A panic in a model
    /// thread fails the whole schedule (this never observes it); a panic in a
    /// real thread propagates, matching `std::thread::JoinHandle::join`
    /// semantics closely enough for test code.
    pub fn join(self) -> T {
        match self.inner {
            Inner::Model { rt, tid, ret } => {
                let me = current()
                    .map(|(_, t)| t)
                    .expect("model join off a model thread");
                rt.join_thread(me, tid);
                ret.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("joined model thread produced no value")
            }
            Inner::Real(h) => match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            },
        }
    }
}
