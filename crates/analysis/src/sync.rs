//! Instrumented synchronization primitives.
//!
//! Each type wraps real storage and delegates to plain OS primitives when the
//! calling code is not running under a `foss_check` schedule, so production
//! crates can be compiled against these shims unconditionally (the
//! `foss_common::sync` facade does exactly that under `model-check`): tests
//! that do not spin up a model keep their normal semantics.
//!
//! Under a schedule, mutual exclusion is enforced by the kernel's token —
//! only one model thread runs at a time — so data lives in an `UnsafeCell`
//! and every acquire/release/notify is a scheduling point.
//!
//! Primitives must be **created inside the checked closure**: a primitive
//! constructed outside a schedule stays in real mode forever (and a real
//! blocking wait on a model thread would stall the whole schedule).

use crate::runtime::{current, Runtime};
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::time::Duration;

/// Handle tying an instrumented object to the schedule it was created under.
struct ModelRef {
    rt: Arc<Runtime>,
    id: usize,
}

fn me() -> usize {
    current().map(|(_, tid)| tid).unwrap_or(usize::MAX)
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

pub struct Mutex<T> {
    model: Option<ModelRef>,
    /// Real-mode exclusivity; the payload always lives in `cell`.
    real: std::sync::Mutex<()>,
    cell: UnsafeCell<T>,
}

// Safety: exclusivity is provided either by `real` (real mode) or by the
// kernel's single-token execution (model mode).
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    real: Option<std::sync::MutexGuard<'a, ()>>,
    /// True for guards fabricated while unwinding an aborted schedule; they
    /// skip all bookkeeping on drop.
    bypass: bool,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        let model = current().map(|(rt, _)| {
            let id = rt.register_mutex();
            ModelRef { rt, id }
        });
        Mutex {
            model,
            real: std::sync::Mutex::new(()),
            cell: UnsafeCell::new(value),
        }
    }

    fn model(&self) -> Option<&ModelRef> {
        // Only treat the object as instrumented from model threads; a guard
        // taken on an outside thread would confuse the kernel bookkeeping.
        match &self.model {
            Some(m) if crate::runtime::model_active() => Some(m),
            _ => None,
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.model() {
            Some(m) => {
                if std::thread::panicking() {
                    return MutexGuard {
                        lock: self,
                        real: None,
                        bypass: true,
                    };
                }
                m.rt.mutex_lock(me(), m.id);
                MutexGuard {
                    lock: self,
                    real: None,
                    bypass: false,
                }
            }
            None => {
                let g = self.real.lock().unwrap_or_else(|e| e.into_inner());
                MutexGuard {
                    lock: self,
                    real: Some(g),
                    bypass: false,
                }
            }
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.model() {
            Some(m) => {
                if std::thread::panicking() {
                    return Some(MutexGuard {
                        lock: self,
                        real: None,
                        bypass: true,
                    });
                }
                if m.rt.mutex_try_lock(me(), m.id) {
                    Some(MutexGuard {
                        lock: self,
                        real: None,
                        bypass: false,
                    })
                } else {
                    None
                }
            }
            None => match self.real.try_lock() {
                Ok(g) => Some(MutexGuard {
                    lock: self,
                    real: Some(g),
                    bypass: false,
                }),
                Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                    lock: self,
                    real: Some(e.into_inner()),
                    bypass: false,
                }),
                Err(std::sync::TryLockError::WouldBlock) => None,
            },
        }
    }

    pub fn into_inner(self) -> T {
        self.cell.into_inner()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.cell.get_mut()
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.cell.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.cell.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.real.is_none() && !self.bypass {
            if let Some(m) = &self.lock.model {
                m.rt.mutex_unlock(me(), m.id);
            }
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

// Opaque on purpose: peeking at the payload would mean taking the lock, and
// a lock acquire is a scheduling point — formatting must not perturb the
// schedule under exploration.
impl<T> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Mutex { .. }")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

pub struct RwLock<T> {
    model: Option<ModelRef>,
    real: std::sync::RwLock<()>,
    cell: UnsafeCell<T>,
}

unsafe impl<T: Send> Send for RwLock<T> {}
unsafe impl<T: Send + Sync> Sync for RwLock<T> {}

pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    real: Option<std::sync::RwLockReadGuard<'a, ()>>,
    bypass: bool,
}

pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    real: Option<std::sync::RwLockWriteGuard<'a, ()>>,
    bypass: bool,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        let model = current().map(|(rt, _)| {
            let id = rt.register_rwlock();
            ModelRef { rt, id }
        });
        RwLock {
            model,
            real: std::sync::RwLock::new(()),
            cell: UnsafeCell::new(value),
        }
    }

    fn model(&self) -> Option<&ModelRef> {
        match &self.model {
            Some(m) if crate::runtime::model_active() => Some(m),
            _ => None,
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.model() {
            Some(m) => {
                if std::thread::panicking() {
                    return RwLockReadGuard {
                        lock: self,
                        real: None,
                        bypass: true,
                    };
                }
                m.rt.rw_read(me(), m.id);
                RwLockReadGuard {
                    lock: self,
                    real: None,
                    bypass: false,
                }
            }
            None => {
                let g = self.real.read().unwrap_or_else(|e| e.into_inner());
                RwLockReadGuard {
                    lock: self,
                    real: Some(g),
                    bypass: false,
                }
            }
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.model() {
            Some(m) => {
                if std::thread::panicking() {
                    return RwLockWriteGuard {
                        lock: self,
                        real: None,
                        bypass: true,
                    };
                }
                m.rt.rw_write(me(), m.id);
                RwLockWriteGuard {
                    lock: self,
                    real: None,
                    bypass: false,
                }
            }
            None => {
                let g = self.real.write().unwrap_or_else(|e| e.into_inner());
                RwLockWriteGuard {
                    lock: self,
                    real: Some(g),
                    bypass: false,
                }
            }
        }
    }

    pub fn into_inner(self) -> T {
        self.cell.into_inner()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.cell.get_mut()
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.cell.get() }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.real.is_none() && !self.bypass {
            if let Some(m) = &self.lock.model {
                m.rt.rw_read_unlock(me(), m.id);
            }
        }
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.cell.get() }
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.cell.get() }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.real.is_none() && !self.bypass {
            if let Some(m) = &self.lock.model {
                m.rt.rw_write_unlock(me(), m.id);
            }
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("RwLock { .. }")
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

pub struct Condvar {
    model_id: Option<usize>,
    model_rt: Option<Arc<Runtime>>,
    real: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Condvar { .. }")
    }
}

impl Condvar {
    pub fn new() -> Self {
        match current() {
            Some((rt, _)) => {
                let id = rt.register_condvar();
                Condvar {
                    model_id: Some(id),
                    model_rt: Some(rt),
                    real: std::sync::Condvar::new(),
                }
            }
            None => Condvar {
                model_id: None,
                model_rt: None,
                real: std::sync::Condvar::new(),
            },
        }
    }

    fn model(&self) -> Option<(&Arc<Runtime>, usize)> {
        match (&self.model_rt, self.model_id) {
            (Some(rt), Some(id)) if crate::runtime::model_active() => Some((rt, id)),
            _ => None,
        }
    }

    /// Block until notified. Returns the (reacquired) guard.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        match self.model() {
            Some((rt, cid)) => {
                if std::thread::panicking() || guard.bypass {
                    return guard;
                }
                let mid = guard
                    .lock
                    .model
                    .as_ref()
                    .map(|m| m.id)
                    .expect("model condvar used with a non-model mutex");
                rt.condvar_wait(me(), cid, mid, false);
                guard
            }
            None => {
                let real = guard
                    .real
                    .take()
                    .expect("real condvar used with a model mutex");
                let real = self.real.wait(real).unwrap_or_else(|e| e.into_inner());
                guard.real = Some(real);
                guard
            }
        }
    }

    /// Block until notified or the timeout elapses. Returns the guard and
    /// whether the wait timed out. Under a schedule the duration is abstract:
    /// the timeout can fire at any scheduling point.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.model() {
            Some((rt, cid)) => {
                if std::thread::panicking() || guard.bypass {
                    return (guard, false);
                }
                let mid = guard
                    .lock
                    .model
                    .as_ref()
                    .map(|m| m.id)
                    .expect("model condvar used with a non-model mutex");
                let timed_out = rt.condvar_wait(me(), cid, mid, true);
                (guard, timed_out)
            }
            None => {
                let real = guard
                    .real
                    .take()
                    .expect("real condvar used with a model mutex");
                let (real, to) = self
                    .real
                    .wait_timeout(real, dur)
                    .unwrap_or_else(|e| e.into_inner());
                guard.real = Some(real);
                (guard, to.timed_out())
            }
        }
    }

    pub fn notify_one(&self) {
        match self.model() {
            Some((rt, cid)) => {
                if !std::thread::panicking() {
                    rt.condvar_notify(me(), cid, false);
                }
            }
            None => self.real.notify_one(),
        }
    }

    pub fn notify_all(&self) {
        match self.model() {
            Some((rt, cid)) => {
                if !std::thread::panicking() {
                    rt.condvar_notify(me(), cid, true);
                }
            }
            None => self.real.notify_all(),
        }
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Instrumented atomics. Execution under a schedule is serialized, so every
/// operation is sequentially consistent regardless of the requested ordering;
/// the value of instrumentation is the scheduling point before each access.
/// Constructors are `const`, so these are drop-in for `static`s too
/// (statics simply never enter model mode).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    fn hook(label: &'static str) {
        if std::thread::panicking() {
            return;
        }
        if let Some((rt, me)) = crate::runtime::current() {
            rt.schedule_point(me, label);
        }
    }

    macro_rules! instrumented_atomic {
        ($name:ident, $std:ident, $ty:ty) => {
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                pub const fn new(v: $ty) -> Self {
                    Self {
                        inner: std::sync::atomic::$std::new(v),
                    }
                }

                pub fn load(&self, order: Ordering) -> $ty {
                    hook(concat!(stringify!($name), "::load"));
                    self.inner.load(order)
                }

                pub fn store(&self, v: $ty, order: Ordering) {
                    hook(concat!(stringify!($name), "::store"));
                    self.inner.store(v, order)
                }

                pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                    hook(concat!(stringify!($name), "::swap"));
                    self.inner.swap(v, order)
                }

                pub fn compare_exchange(
                    &self,
                    cur: $ty,
                    new: $ty,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$ty, $ty> {
                    hook(concat!(stringify!($name), "::compare_exchange"));
                    self.inner.compare_exchange(cur, new, ok, err)
                }

                pub fn into_inner(self) -> $ty {
                    self.inner.into_inner()
                }
            }
        };
    }

    instrumented_atomic!(AtomicBool, AtomicBool, bool);
    instrumented_atomic!(AtomicU64, AtomicU64, u64);
    instrumented_atomic!(AtomicUsize, AtomicUsize, usize);

    macro_rules! instrumented_arith {
        ($name:ident, $ty:ty) => {
            impl $name {
                pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                    hook(concat!(stringify!($name), "::fetch_add"));
                    self.inner.fetch_add(v, order)
                }

                pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                    hook(concat!(stringify!($name), "::fetch_sub"));
                    self.inner.fetch_sub(v, order)
                }

                pub fn fetch_max(&self, v: $ty, order: Ordering) -> $ty {
                    hook(concat!(stringify!($name), "::fetch_max"));
                    self.inner.fetch_max(v, order)
                }

                pub fn fetch_min(&self, v: $ty, order: Ordering) -> $ty {
                    hook(concat!(stringify!($name), "::fetch_min"));
                    self.inner.fetch_min(v, order)
                }

                pub fn fetch_update<F>(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    f: F,
                ) -> Result<$ty, $ty>
                where
                    F: FnMut($ty) -> Option<$ty>,
                {
                    hook(concat!(stringify!($name), "::fetch_update"));
                    self.inner.fetch_update(set_order, fetch_order, f)
                }
            }
        };
    }

    instrumented_arith!(AtomicU64, u64);
    instrumented_arith!(AtomicUsize, usize);
}
