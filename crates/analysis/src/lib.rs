//! `foss_check` — a dependency-free, loom-lite model checker for the FOSS
//! concurrency kernel.
//!
//! The checker runs a closure many times under a cooperative scheduler that
//! serializes execution and interposes on every synchronization operation
//! (lock, unlock-visible acquire retry, condvar wait/notify, atomic access,
//! spawn/join). At each such *scheduling point* the kernel picks which thread
//! proceeds, either
//!
//! - **exhaustively** — depth-first enumeration of the schedule tree, bounded
//!   by a schedule budget and a per-schedule step bound, or
//! - **randomly** — seed-replayable pseudo-random walks for larger state
//!   spaces.
//!
//! A failing schedule (assertion panic, deadlock, step-bound livelock) is
//! reported as a [`Failure`] carrying a printable trace, the exact choice
//! sequence, and — for random search — the per-schedule seed. Both replay
//! routes ([`replay`] by choices, [`replay_seed`] by seed) reproduce the
//! interleaving deterministically.
//!
//! Code under test talks to the scheduler through [`sync`] (instrumented
//! `Mutex`/`RwLock`/`Condvar`/atomics) and [`thread`] (model spawn/join). The
//! production crates route their primitives through the `foss_common::sync`
//! facade, which re-exports these shims under `cfg(feature = "model-check")`
//! — so the model suites in `tests/model.rs` exercise the *real* cache /
//! snapshot / gate / breaker / metrics implementations, not copies.
//!
//! ```
//! let report = foss_check::check_exhaustive(1_000, || {
//!     let v = std::sync::Arc::new(foss_check::sync::atomic::AtomicU64::new(0));
//!     let v2 = std::sync::Arc::clone(&v);
//!     let t = foss_check::thread::spawn(move || {
//!         v2.fetch_add(1, foss_check::sync::atomic::Ordering::SeqCst);
//!     });
//!     v.fetch_add(1, foss_check::sync::atomic::Ordering::SeqCst);
//!     t.join();
//!     assert_eq!(v.load(foss_check::sync::atomic::Ordering::SeqCst), 2);
//! });
//! report.assert_ok();
//! assert!(report.complete);
//! ```

mod runtime;
pub mod sync;
pub mod thread;

pub use runtime::model_active;

use runtime::{run_schedule, splitmix64, Choice, Decider};
use std::sync::Arc;

/// Search strategy for [`check`].
#[derive(Clone, Copy, Debug)]
pub enum Strategy {
    /// Depth-first enumeration of all schedules (up to the budget).
    Exhaustive,
    /// Seed-replayable random walks; schedule `i` uses the derived seed
    /// `seed + i`, which [`Failure::seed`] reports on failure.
    Random { seed: u64 },
}

/// Bounds and strategy for a model-checking run.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    pub strategy: Strategy,
    /// Maximum number of schedules to run.
    pub max_schedules: usize,
    /// Per-schedule bound on scheduling points; exceeding it fails the
    /// schedule (livelock guard).
    pub max_steps: usize,
    /// Per-schedule budget for *preemptive* condvar-timeout deliveries
    /// (firing a timeout while other threads could still run). Code that
    /// re-waits after a timeout would make the schedule tree infinite
    /// without this bound. Timeouts still fire past the budget whenever only
    /// timed waiters remain, since real time would then pass unconditionally.
    pub max_timeouts: usize,
}

impl Config {
    pub fn exhaustive(max_schedules: usize) -> Self {
        Config {
            strategy: Strategy::Exhaustive,
            max_schedules,
            max_steps: 20_000,
            max_timeouts: 2,
        }
    }

    pub fn random(seed: u64, max_schedules: usize) -> Self {
        Config {
            strategy: Strategy::Random { seed },
            max_schedules,
            max_steps: 20_000,
            max_timeouts: 2,
        }
    }
}

/// A failing schedule, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Panic message, deadlock report, or livelock/step-bound report.
    pub message: String,
    /// Human-readable trace: one line per scheduling point, in execution
    /// order.
    pub trace: Vec<String>,
    /// The exact branch taken at every choice point; feed to [`replay`].
    pub choices: Vec<usize>,
    /// For random search: the derived per-schedule seed; feed to
    /// [`replay_seed`].
    pub seed: Option<u64>,
}

impl Failure {
    /// Render the failure as a report suitable for a panic message.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("model check failed: ");
        out.push_str(&self.message);
        out.push('\n');
        match self.seed {
            Some(s) => out.push_str(&format!(
                "replay: foss_check::replay_seed({s}, f) or foss_check::replay(&{:?}, f)\n",
                self.choices
            )),
            None => out.push_str(&format!(
                "replay: foss_check::replay(&{:?}, f)\n",
                self.choices
            )),
        }
        out.push_str("schedule trace:\n");
        for (i, line) in self.trace.iter().enumerate() {
            out.push_str(&format!("  {i:4}  {line}\n"));
        }
        out
    }
}

/// Outcome of a model-checking run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of schedules executed.
    pub schedules: usize,
    /// True iff exhaustive search enumerated the entire schedule tree within
    /// the budget (always false for random search).
    pub complete: bool,
    pub failure: Option<Failure>,
}

impl Report {
    /// Panic with the rendered failure if any schedule failed.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!("{}", f.render());
        }
    }

    /// Assert that the run found a failure (mutation-style tests: the checker
    /// must have teeth) and return it.
    pub fn assert_failed(&self) -> &Failure {
        self.failure.as_ref().unwrap_or_else(|| {
            panic!(
                "expected the model checker to find a failure ({} schedules, complete={})",
                self.schedules, self.complete
            )
        })
    }
}

/// Model-check `f` under `cfg`. The closure runs once per schedule and must
/// be deterministic apart from scheduling (no wall-clock, no OS randomness);
/// all shared state should be created inside it.
pub fn check(cfg: &Config, f: impl Fn() + Send + Sync + 'static) -> Report {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    match cfg.strategy {
        Strategy::Exhaustive => {
            let mut stack: Vec<Choice> = Vec::new();
            let mut schedules = 0;
            loop {
                if schedules >= cfg.max_schedules {
                    return Report {
                        schedules,
                        complete: false,
                        failure: None,
                    };
                }
                let decider = Decider::Dfs {
                    stack: std::mem::take(&mut stack),
                    pos: 0,
                };
                let out = run_schedule(decider, cfg.max_steps, cfg.max_timeouts, Arc::clone(&f));
                schedules += 1;
                let choices = out.decider.taken_choices();
                if let Some(message) = out.failure {
                    return Report {
                        schedules,
                        complete: false,
                        failure: Some(Failure {
                            message,
                            trace: out.trace,
                            choices,
                            seed: None,
                        }),
                    };
                }
                let mut st = match out.decider {
                    Decider::Dfs { stack, .. } => stack,
                    _ => unreachable!("exhaustive run returned a non-DFS decider"),
                };
                // Backtrack: advance the deepest non-exhausted choice point.
                loop {
                    match st.last_mut() {
                        None => {
                            return Report {
                                schedules,
                                complete: true,
                                failure: None,
                            }
                        }
                        Some(top) if top.chosen + 1 < top.options => {
                            top.chosen += 1;
                            break;
                        }
                        Some(_) => {
                            st.pop();
                        }
                    }
                }
                stack = st;
            }
        }
        Strategy::Random { seed } => {
            for i in 0..cfg.max_schedules {
                let schedule_seed = seed.wrapping_add(i as u64);
                let decider = Decider::Random {
                    state: splitmix64(schedule_seed),
                    choices: Vec::new(),
                };
                let out = run_schedule(decider, cfg.max_steps, cfg.max_timeouts, Arc::clone(&f));
                if let Some(message) = out.failure {
                    return Report {
                        schedules: i + 1,
                        complete: false,
                        failure: Some(Failure {
                            message,
                            trace: out.trace,
                            choices: out.decider.taken_choices(),
                            seed: Some(schedule_seed),
                        }),
                    };
                }
            }
            Report {
                schedules: cfg.max_schedules,
                complete: false,
                failure: None,
            }
        }
    }
}

/// Exhaustive search with default bounds; see [`check`].
pub fn check_exhaustive(max_schedules: usize, f: impl Fn() + Send + Sync + 'static) -> Report {
    check(&Config::exhaustive(max_schedules), f)
}

/// Random search with default bounds; see [`check`].
pub fn check_random(
    seed: u64,
    max_schedules: usize,
    f: impl Fn() + Send + Sync + 'static,
) -> Report {
    check(&Config::random(seed, max_schedules), f)
}

/// Replay one schedule from a recorded choice sequence ([`Failure::choices`]).
pub fn replay(choices: &[usize], f: impl Fn() + Send + Sync + 'static) -> Report {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let decider = Decider::Replay {
        choices: choices.to_vec(),
        pos: 0,
    };
    // Bounds must match the original run's config (the enabled-set layout
    // depends on them), so use the same defaults as Config::exhaustive.
    let out = run_schedule(decider, 20_000, 2, f);
    let choices = out.decider.taken_choices();
    Report {
        schedules: 1,
        complete: false,
        failure: out.failure.map(|message| Failure {
            message,
            trace: out.trace,
            choices,
            seed: None,
        }),
    }
}

/// Replay one schedule from a per-schedule seed ([`Failure::seed`]). Running
/// [`check_random`] with this seed and a budget of 1 is equivalent.
pub fn replay_seed(seed: u64, f: impl Fn() + Send + Sync + 'static) -> Report {
    let mut report = check(&Config::random(seed, 1), f);
    if let Some(f) = &mut report.failure {
        f.seed = Some(seed);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicU64, Ordering};
    use crate::sync::{Condvar, Mutex};
    use std::sync::atomic::AtomicBool as RealAtomicBool;
    use std::sync::atomic::Ordering as RealOrdering;
    use std::sync::Arc;

    /// Two threads doing read-modify-write through separate load/store must
    /// lose an update in some interleaving; exhaustive search finds it.
    fn racy_increment() {
        let v = Arc::new(AtomicU64::new(0));
        let v2 = Arc::clone(&v);
        let t = thread::spawn(move || {
            let cur = v2.load(Ordering::SeqCst);
            v2.store(cur + 1, Ordering::SeqCst);
        });
        let cur = v.load(Ordering::SeqCst);
        v.store(cur + 1, Ordering::SeqCst);
        t.join();
        assert_eq!(v.load(Ordering::SeqCst), 2, "lost update");
    }

    #[test]
    fn exhaustive_finds_lost_update() {
        let report = check_exhaustive(10_000, racy_increment);
        let failure = report.assert_failed();
        assert!(
            failure.message.contains("lost update"),
            "message: {}",
            failure.message
        );
        assert!(!failure.trace.is_empty());

        // The recorded choices replay to the same failure, deterministically.
        let choices = failure.choices.clone();
        let replayed = replay(&choices, racy_increment);
        let rf = replayed.assert_failed();
        assert!(rf.message.contains("lost update"));
        assert_eq!(
            rf.trace, failure.trace,
            "replay must reproduce the exact trace"
        );
    }

    #[test]
    fn random_failure_replays_by_seed() {
        let report = check_random(42, 500, racy_increment);
        let failure = report.assert_failed();
        let seed = failure.seed.expect("random failures carry a seed");
        let replayed = replay_seed(seed, racy_increment);
        let rf = replayed.assert_failed();
        assert_eq!(
            rf.trace, failure.trace,
            "seed replay must reproduce the exact trace"
        );
    }

    #[test]
    fn mutex_protected_increment_is_race_free() {
        let report = check_exhaustive(50_000, || {
            let v = Arc::new(Mutex::new(0u64));
            let v2 = Arc::clone(&v);
            let t = thread::spawn(move || {
                let mut g = v2.lock();
                *g += 1;
            });
            {
                let mut g = v.lock();
                *g += 1;
            }
            t.join();
            assert_eq!(*v.lock(), 2);
        });
        report.assert_ok();
        assert!(
            report.complete,
            "small tree should be fully enumerated in {} schedules",
            report.schedules
        );
    }

    #[test]
    fn lock_order_inversion_is_reported_as_deadlock() {
        let report = check_exhaustive(10_000, || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop(_ga);
            drop(_gb);
            t.join();
        });
        let failure = report.assert_failed();
        assert!(
            failure.message.contains("deadlock"),
            "message: {}",
            failure.message
        );
    }

    #[test]
    fn condvar_handoff_is_race_free_and_timeouts_are_explored() {
        // Cross-schedule collectors must use *real* atomics so they are
        // invisible to the scheduler.
        let saw_timeout = Arc::new(RealAtomicBool::new(false));
        let saw_notify = Arc::new(RealAtomicBool::new(false));
        let (st, sn) = (Arc::clone(&saw_timeout), Arc::clone(&saw_notify));
        let report = check_exhaustive(50_000, move || {
            let slot = Arc::new((Mutex::new(None::<u32>), Condvar::new()));
            let slot2 = Arc::clone(&slot);
            let t = thread::spawn(move || {
                let (m, cv) = &*slot2;
                let mut g = m.lock();
                *g = Some(7);
                drop(g);
                cv.notify_all();
            });
            let (m, cv) = &*slot;
            let mut g = m.lock();
            let mut timed_out_once = false;
            while g.is_none() {
                let (g2, timed_out) = cv.wait_timeout(g, std::time::Duration::from_secs(3600));
                g = g2;
                timed_out_once |= timed_out;
            }
            if timed_out_once {
                st.store(true, RealOrdering::SeqCst);
            } else {
                sn.store(true, RealOrdering::SeqCst);
            }
            assert_eq!(*g, Some(7));
            drop(g);
            t.join();
        });
        report.assert_ok();
        assert!(report.complete);
        assert!(
            saw_timeout.load(RealOrdering::SeqCst),
            "exhaustive search must explore a schedule where the timeout fires"
        );
        assert!(
            saw_notify.load(RealOrdering::SeqCst),
            "exhaustive search must explore a schedule where the notify lands first"
        );
    }

    #[test]
    fn shims_fall_back_to_real_primitives_outside_a_model() {
        assert!(!model_active());
        let m = Mutex::new(1u32);
        {
            let mut g = m.lock();
            *g = 2;
        }
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());

        let v = AtomicU64::new(5);
        assert_eq!(v.fetch_add(2, Ordering::SeqCst), 5);
        assert_eq!(v.load(Ordering::SeqCst), 7);

        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            g = cv.wait(g);
        }
        drop(g);
        t.join();
    }

    use crate::thread;
}
