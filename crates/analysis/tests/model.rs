//! Model-check suites for the production concurrency primitives.
//!
//! Run with `cargo test -p foss_analysis --features model-check`. Under that
//! feature, cargo feature unification compiles every crate in this test
//! build against the instrumented `foss_common::sync` facade, so the suites
//! below drive the *real* production code — the single-flight cache, the
//! snapshot cell, the admission gate, the circuit breaker and the metrics
//! registry — under `foss_check`'s cooperative scheduler.
//!
//! Each primitive gets an exhaustive pass at small bounds (every
//! interleaving within the schedule budget) and a seeded random pass at
//! larger ones. A failure prints a replayable trace; reproduce it with
//! [`foss_check::replay`] (choice list) or [`foss_check::replay_seed`].
#![cfg(feature = "model-check")]

use std::sync::atomic::{AtomicBool, Ordering as RealOrdering};
use std::sync::Arc;
use std::time::Duration;

use foss_check::{check_exhaustive, check_random, replay, replay_seed};

#[test]
fn facade_is_instrumented() {
    // With `model-check` enabled, cargo feature unification compiles every
    // crate in this test build against the foss_check shims; sanity-check
    // that a facade mutex really is the instrumented type.
    let _: foss_check::sync::Mutex<u32> = foss_common::sync::Mutex::new(0);
}

// ---------------------------------------------------------------------------
// core: SnapshotCell
// ---------------------------------------------------------------------------

mod snapshot {
    use super::*;
    use foss_core::SnapshotCell;

    /// One schedule: `publishes` sequential publishes of `(i, i)` race a
    /// reader that checks (a) no load ever observes a torn pair, (b) an
    /// observed generation `g` guarantees the next load carries the payload
    /// of publish `g` or later (the documented swap-then-bump ordering),
    /// and (c) the generation counter is monotone.
    fn publish_vs_read(publishes: u64, reads: usize) {
        let cell = Arc::new(SnapshotCell::new((0u64, 0u64)));
        let writer = {
            let cell = Arc::clone(&cell);
            foss_check::thread::spawn(move || {
                for i in 1..=publishes {
                    cell.publish((i, i));
                }
            })
        };
        let reader = {
            let cell = Arc::clone(&cell);
            foss_check::thread::spawn(move || {
                let mut last_gen = 0;
                for _ in 0..reads {
                    let g0 = cell.generation();
                    let v = cell.load();
                    assert_eq!(v.0, v.1, "torn snapshot read: {:?}", *v);
                    assert!(
                        v.0 >= g0,
                        "observed generation {g0} but loaded payload {}",
                        v.0
                    );
                    let g1 = cell.generation();
                    assert!(g1 >= g0, "generation went backwards: {g0} -> {g1}");
                    assert!(g0 >= last_gen, "generation went backwards across loads");
                    last_gen = g1;
                }
            })
        };
        writer.join();
        reader.join();
        assert_eq!(*cell.load(), (publishes, publishes));
        assert_eq!(cell.generation(), publishes);
    }

    #[test]
    fn exhaustive_no_torn_reads() {
        let report = check_exhaustive(100_000, || publish_vs_read(1, 2));
        report.assert_ok();
        assert!(report.complete, "exhaustive budget too small");
    }

    #[test]
    fn random_no_torn_reads() {
        check_random(0xF055_0001, 2_000, || publish_vs_read(2, 2)).assert_ok();
    }
}

// ---------------------------------------------------------------------------
// service: AdmissionGate
// ---------------------------------------------------------------------------

mod gate {
    use super::*;
    use foss_service::AdmissionGate;

    /// `workers` acquirers through a capacity-`cap` gate: the high-water
    /// mark (maintained under the gate lock at every admit) must never
    /// exceed capacity in any interleaving, every thread must eventually be
    /// admitted (the checker reports a lost wakeup as a deadlock), and all
    /// permits must be returned.
    fn bounded_admission(workers: usize, cap: usize) {
        let gate = Arc::new(AdmissionGate::new(cap));
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let gate = Arc::clone(&gate);
                foss_check::thread::spawn(move || {
                    let _permit = gate.acquire();
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert!(gate.high_water() <= cap, "gate leaked permits");
        assert_eq!(gate.in_flight(), 0, "permit not returned");
    }

    #[test]
    fn exhaustive_never_exceeds_capacity() {
        let report = check_exhaustive(200_000, || bounded_admission(2, 1));
        report.assert_ok();
        assert!(report.complete, "exhaustive budget too small");
    }

    #[test]
    fn random_never_exceeds_capacity() {
        check_random(0xF055_0002, 1_000, || bounded_admission(3, 2)).assert_ok();
    }

    /// A blocking acquirer against a capacity-1 gate must be woken by the
    /// holder's release in *every* interleaving — a missed `notify_one`
    /// shows up as a deadlock report from the checker.
    #[test]
    fn exhaustive_release_always_wakes_blocked_acquirer() {
        let report = check_exhaustive(100_000, || {
            let gate = Arc::new(AdmissionGate::new(1));
            let held = gate.acquire();
            let waiter = {
                let gate = Arc::clone(&gate);
                foss_check::thread::spawn(move || {
                    let _p = gate.acquire();
                })
            };
            drop(held);
            waiter.join();
            assert_eq!(gate.in_flight(), 0);
        });
        report.assert_ok();
        assert!(report.complete, "exhaustive budget too small");
    }

    /// A timed waiter against a gate that stays full forever must shed
    /// (never hang): once every other thread blocks, the model delivers the
    /// timeout, and the full-gate recheck turns it into `None`.
    #[test]
    fn exhaustive_saturated_gate_always_sheds_timed_waiter() {
        let report = check_exhaustive(100_000, || {
            let gate = Arc::new(AdmissionGate::new(1));
            let held = gate.acquire();
            let waiter = {
                let gate = Arc::clone(&gate);
                foss_check::thread::spawn(move || {
                    gate.acquire_timeout(Duration::from_secs(3600)).is_some()
                })
            };
            let admitted = waiter.join();
            assert!(!admitted, "permit conjured from a saturated gate");
            drop(held);
        });
        report.assert_ok();
        assert!(report.complete, "exhaustive budget too small");
    }

    /// A timed high-priority waiter racing the holder's release: both
    /// outcomes (shed on timeout, admitted on release) must be reachable,
    /// and a timeout that fires *after* the release must still admit — the
    /// gate rechecks fullness under the lock before shedding, so a waiting
    /// caller is never shed while a slot stands free. That recheck is what
    /// preserves the service's priority shed ordering: low priority sheds
    /// immediately via `try_acquire`, high priority only after its full
    /// wait truly found no slot.
    #[test]
    fn exhaustive_timed_waiter_explores_both_shed_and_admission() {
        let shed_seen = Arc::new(AtomicBool::new(false));
        let admit_seen = Arc::new(AtomicBool::new(false));
        let report = {
            let shed_seen = Arc::clone(&shed_seen);
            let admit_seen = Arc::clone(&admit_seen);
            check_exhaustive(200_000, move || {
                let gate = Arc::new(AdmissionGate::new(1));
                let held = gate.acquire();
                let waiter = {
                    let gate = Arc::clone(&gate);
                    foss_check::thread::spawn(move || {
                        let p = gate.acquire_timeout(Duration::from_secs(3600));
                        p.is_some()
                    })
                };
                drop(held);
                if waiter.join() {
                    admit_seen.store(true, RealOrdering::Relaxed);
                } else {
                    shed_seen.store(true, RealOrdering::Relaxed);
                }
                assert!(gate.high_water() <= 1, "gate leaked permits");
                assert_eq!(gate.in_flight(), 0);
            })
        };
        report.assert_ok();
        assert!(report.complete, "exhaustive budget too small");
        assert!(
            shed_seen.load(RealOrdering::Relaxed),
            "no schedule delivered the timeout while the gate was full"
        );
        assert!(
            admit_seen.load(RealOrdering::Relaxed),
            "no schedule admitted the waiter after the release"
        );
    }
}

// ---------------------------------------------------------------------------
// service: CircuitBreaker
// ---------------------------------------------------------------------------

mod breaker {
    use super::*;
    use foss_service::{BreakerConfig, BreakerDecision, BreakerState, CircuitBreaker};

    fn tiny(cooldown: usize) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            window: 2,
            min_samples: 2,
            failure_threshold: 0.5,
            cooldown,
            probes: 1,
        })
    }

    /// Two racing probe outcomes against a half-open breaker: whichever
    /// lands first decides (success closes, failure reopens) and the loser
    /// must be discarded as stale — the breaker must end Open or Closed,
    /// never wedged half-open, and both resolutions must be reachable.
    fn probe_race(open_seen: &AtomicBool, closed_seen: &AtomicBool) {
        let breaker = Arc::new(tiny(1));
        breaker.on_outcome(0, false, false);
        breaker.on_outcome(0, false, false);
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.admit(0), BreakerDecision::Probe);
        let ok_probe = {
            let breaker = Arc::clone(&breaker);
            foss_check::thread::spawn(move || breaker.on_outcome(0, true, true))
        };
        let bad_probe = {
            let breaker = Arc::clone(&breaker);
            foss_check::thread::spawn(move || breaker.on_outcome(0, false, true))
        };
        ok_probe.join();
        bad_probe.join();
        match breaker.state() {
            BreakerState::Open => open_seen.store(true, RealOrdering::Relaxed),
            BreakerState::Closed => closed_seen.store(true, RealOrdering::Relaxed),
            BreakerState::HalfOpen => panic!("breaker wedged half-open after both probes landed"),
        }
    }

    #[test]
    fn exhaustive_probe_race_settles_open_or_closed() {
        let open_seen = Arc::new(AtomicBool::new(false));
        let closed_seen = Arc::new(AtomicBool::new(false));
        let report = {
            let open_seen = Arc::clone(&open_seen);
            let closed_seen = Arc::clone(&closed_seen);
            check_exhaustive(100_000, move || probe_race(&open_seen, &closed_seen))
        };
        report.assert_ok();
        assert!(report.complete, "exhaustive budget too small");
        assert!(
            open_seen.load(RealOrdering::Relaxed),
            "failure-first order unexplored"
        );
        assert!(
            closed_seen.load(RealOrdering::Relaxed),
            "success-first order unexplored"
        );
    }

    #[test]
    fn random_probe_race_settles_open_or_closed() {
        let open_seen = Arc::new(AtomicBool::new(false));
        let closed_seen = Arc::new(AtomicBool::new(false));
        let report = {
            let open_seen = Arc::clone(&open_seen);
            let closed_seen = Arc::clone(&closed_seen);
            check_random(0xF055_0003, 500, move || {
                probe_race(&open_seen, &closed_seen)
            })
        };
        report.assert_ok();
        assert!(open_seen.load(RealOrdering::Relaxed) && closed_seen.load(RealOrdering::Relaxed));
    }

    /// Two admits racing across the cooldown boundary of an open breaker:
    /// exactly one may be promoted to the recovery probe, the other must be
    /// bypassed, in every interleaving.
    #[test]
    fn exhaustive_cooldown_promotes_exactly_one_probe() {
        let report = check_exhaustive(100_000, || {
            let breaker = Arc::new(tiny(2));
            breaker.on_outcome(0, false, false);
            breaker.on_outcome(0, false, false);
            assert_eq!(breaker.state(), BreakerState::Open);
            let decisions: Vec<BreakerDecision> = [(); 2]
                .iter()
                .map(|_| {
                    let breaker = Arc::clone(&breaker);
                    foss_check::thread::spawn(move || breaker.admit(0))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join())
                .collect();
            let probes = decisions
                .iter()
                .filter(|d| **d == BreakerDecision::Probe)
                .count();
            let bypasses = decisions
                .iter()
                .filter(|d| **d == BreakerDecision::Bypass)
                .count();
            assert_eq!(
                (probes, bypasses),
                (1, 1),
                "cooldown raced: decisions {decisions:?}"
            );
        });
        report.assert_ok();
        assert!(report.complete, "exhaustive budget too small");
    }
}

// ---------------------------------------------------------------------------
// service: MetricsRegistry
// ---------------------------------------------------------------------------

mod metrics {
    use super::*;
    use foss_executor::CacheStats;
    use foss_service::{BreakerState, BreakerView, MetricsRegistry, Outcome};

    fn idle_breaker() -> BreakerView {
        BreakerView {
            state: BreakerState::Closed,
            transitions: 0,
            times_opened: 0,
        }
    }

    /// Two recorders (one clean outcome, one exec-error fallback) race —
    /// optionally against a snapshot reader, which multiplies the
    /// interleaving space (the snapshot reads a dozen counters plus both
    /// reservoirs) and is therefore reserved for the random pass. Counters
    /// must conserve totals once both land, the reservoir lock must never
    /// deadlock against a concurrent push, and a mid-flight snapshot must
    /// see a prefix (0..=2 submissions), never garbage.
    fn concurrent_records(with_observer: bool) {
        let reg = Arc::new(MetricsRegistry::default());
        let recorders: Vec<_> = [
            foss_service::FallbackReason::None,
            foss_service::FallbackReason::ExecError,
        ]
        .into_iter()
        .map(|reason| {
            let reg = Arc::clone(&reg);
            foss_check::thread::spawn(move || {
                reg.record(&Outcome {
                    planning_us: 5.0,
                    latency: 100.0,
                    reason,
                });
            })
        })
        .collect();
        let observer = with_observer.then(|| {
            let reg = Arc::clone(&reg);
            foss_check::thread::spawn(move || {
                let mid = reg.snapshot(
                    CacheStats::default(),
                    0,
                    idle_breaker(),
                    0,
                    foss_service::TierStats::default(),
                );
                assert!(
                    mid.submitted <= 2,
                    "snapshot saw {} > 2 submissions",
                    mid.submitted
                );
            })
        });
        for r in recorders {
            r.join();
        }
        if let Some(o) = observer {
            o.join();
        }
        let fin = reg.snapshot(
            CacheStats::default(),
            0,
            idle_breaker(),
            0,
            foss_service::TierStats::default(),
        );
        assert_eq!(fin.submitted, 2);
        assert_eq!(fin.fallbacks, 1);
        assert_eq!(fin.exec_errors, 1);
        assert_eq!(fin.errors, 0);
        assert_eq!(fin.latency_p50, 100.0);
    }

    #[test]
    fn exhaustive_concurrent_records_conserve_totals() {
        let report = check_exhaustive(200_000, || concurrent_records(false));
        report.assert_ok();
        assert!(report.complete, "exhaustive budget too small");
    }

    #[test]
    fn random_concurrent_records_conserve_totals() {
        check_random(0xF055_0004, 500, || concurrent_records(true)).assert_ok();
    }
}

// ---------------------------------------------------------------------------
// service: TierCell (tiered-execution publish/claim)
// ---------------------------------------------------------------------------

mod tier {
    use super::*;
    use foss_service::TierCell;

    const SHAPE: u64 = 7;

    /// The compile discipline `TierEngine::pipeline_for` runs per racer:
    /// read the cell, try to claim, publish on success. Returns 1 if this
    /// racer published.
    fn try_compile(cell: &TierCell<(u64, u64)>, tid: u64) -> u32 {
        if cell.get(SHAPE).is_some() {
            return 0;
        }
        match cell.claim(SHAPE) {
            Some(claim) => {
                claim.publish((tid, tid));
                1
            }
            None => 0,
        }
    }

    /// `racers` compile racers for one shape against `reads` observer
    /// loads: exactly one racer publishes, no load observes a torn
    /// pipeline payload, the generation is monotone, and an observed
    /// generation ≥ 1 guarantees the entry is visible (publish swaps the
    /// map *before* bumping, mirroring `SnapshotCell`).
    fn compile_race(racers: u64, reads: usize) {
        let cell = Arc::new(TierCell::<(u64, u64)>::new());
        let compilers: Vec<_> = (1..=racers)
            .map(|tid| {
                let cell = Arc::clone(&cell);
                foss_check::thread::spawn(move || try_compile(&cell, tid))
            })
            .collect();
        let reader = (reads > 0).then(|| {
            let cell = Arc::clone(&cell);
            foss_check::thread::spawn(move || {
                let mut last_gen = 0;
                for _ in 0..reads {
                    let g0 = cell.generation();
                    if let Some(v) = cell.get(SHAPE) {
                        assert_eq!(v.0, v.1, "torn pipeline read: {:?}", *v);
                    } else {
                        assert_eq!(g0, 0, "generation {g0} observed but entry missing");
                    }
                    let g1 = cell.generation();
                    assert!(g1 >= g0, "generation went backwards: {g0} -> {g1}");
                    assert!(g0 >= last_gen, "generation went backwards across loads");
                    last_gen = g1;
                }
            })
        });
        let published: u32 = compilers.into_iter().map(|h| h.join()).sum();
        if let Some(reader) = reader {
            reader.join();
        }
        assert_eq!(published, 1, "compile race must have exactly one winner");
        assert_eq!(cell.generation(), 1, "exactly one publish bumps once");
        let v = cell.get(SHAPE).expect("winner's entry visible after join");
        assert_eq!(v.0, v.1, "published entry torn");
    }

    #[test]
    fn exhaustive_one_compile_winner() {
        let report = check_exhaustive(400_000, || compile_race(2, 0));
        report.assert_ok();
        assert!(report.complete, "exhaustive budget too small");
    }

    #[test]
    fn random_one_compile_winner_no_torn_reads() {
        check_random(0xF055_0007, 1_000, || compile_race(3, 2)).assert_ok();
    }

    /// A claim dropped without publishing (a compiler that declined) must
    /// release the key in every interleaving: whatever order the decliner
    /// and the racer land in, the shape ends published exactly once — by
    /// the racer or by a retry after both settle — and never wedged.
    #[test]
    fn exhaustive_dropped_claim_releases_the_key() {
        let report = check_exhaustive(1_000_000, || {
            let cell = Arc::new(TierCell::<(u64, u64)>::new());
            let decliner = {
                let cell = Arc::clone(&cell);
                foss_check::thread::spawn(move || {
                    drop(cell.claim(SHAPE));
                    0u32
                })
            };
            let racer = {
                let cell = Arc::clone(&cell);
                foss_check::thread::spawn(move || try_compile(&cell, 9))
            };
            let published = decliner.join() + racer.join();
            if published == 0 {
                // The racer lost its claim to the decliner; the key must be
                // claimable again now — a wedged key would return None.
                assert_eq!(try_compile(&cell, 10), 1, "dropped claim wedged the key");
            }
            assert_eq!(cell.generation(), 1);
            assert!(cell.get(SHAPE).is_some());
        });
        report.assert_ok();
        assert!(report.complete, "exhaustive budget too small");
    }
}

// ---------------------------------------------------------------------------
// executor: CachingExecutor single-flight
// ---------------------------------------------------------------------------

mod cache {
    use super::*;
    use foss_catalog::{ColumnDef, Schema, TableDef};
    use foss_common::QueryId;
    use foss_executor::{CachingExecutor, Database};
    use foss_optimizer::{AccessPath, CostModel, PhysicalPlan, PlanNode};
    use foss_query::{Predicate, Query, QueryBuilder};
    use foss_storage::{Column, Table};

    /// A one-table database with a trivial scan query, built once per test
    /// (the database is plain data — only the executor's own primitives
    /// must be created inside the model).
    fn fixture() -> (Arc<Database>, Arc<Query>, Arc<PhysicalPlan>) {
        let mut schema = Schema::new();
        schema
            .add_table(TableDef {
                name: "a".into(),
                columns: vec![ColumnDef::indexed("id")],
            })
            .unwrap();
        let schema = Arc::new(schema);
        let table = Table::new("a", vec![("id".into(), Column::new((0..8).collect()))]).unwrap();
        let db = Arc::new(Database::new(schema.clone(), vec![table], 8).unwrap());
        let mut qb = QueryBuilder::new(QueryId::new(7), 1);
        let ra = qb.relation(schema.table_id("a").unwrap(), "a");
        qb.predicate(
            ra,
            Predicate::Eq {
                column: 0,
                value: 3,
            },
        );
        let query = Arc::new(qb.build(&schema).unwrap());
        let plan = Arc::new(PhysicalPlan {
            root: PlanNode::Scan {
                relation: 0,
                access: AccessPath::SeqScan,
                est_rows: 1.0,
                est_cost: 1.0,
            },
        });
        (db, query, plan)
    }

    /// Two concurrent misses on the same key: single-flight must collapse
    /// them to exactly one real execution (the second caller either waits
    /// on the in-flight claim or hits the filled cache), in every
    /// interleaving.
    fn single_flight(db: &Arc<Database>, query: &Arc<Query>, plan: &Arc<PhysicalPlan>) {
        let cx = Arc::new(CachingExecutor::new(Arc::clone(db), CostModel::default()));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let cx = Arc::clone(&cx);
                let query = Arc::clone(query);
                let plan = Arc::clone(plan);
                foss_check::thread::spawn(move || cx.execute(&query, &plan, None).unwrap().latency)
            })
            .collect();
        let latencies: Vec<f64> = workers.into_iter().map(|w| w.join()).collect();
        assert_eq!(latencies[0], latencies[1], "same key, different outcomes");
        let stats = cx.stats();
        assert_eq!(
            stats.executions, 1,
            "single-flight violated: executed twice"
        );
        assert_eq!(stats.hits, 1, "second caller must be served from cache");
    }

    #[test]
    fn exhaustive_no_double_execution() {
        let (db, query, plan) = fixture();
        let report = check_exhaustive(400_000, move || single_flight(&db, &query, &plan));
        report.assert_ok();
        assert!(report.complete, "exhaustive budget too small");
    }

    #[test]
    fn random_no_double_execution() {
        let (db, query, plan) = fixture();
        check_random(0xF055_0005, 500, move || single_flight(&db, &query, &plan)).assert_ok();
    }

    /// Mutation regression: the pre-single-flight cache (`execute_unflighted`,
    /// the PR 6 code before the in-flight claim existed) re-executes on
    /// concurrent misses. The checker must FIND that interleaving within a
    /// small bound — proof the suite would have caught the original bug —
    /// and the failure must replay deterministically from its choice list.
    #[test]
    fn exhaustive_finds_double_execution_in_unflighted_cache() {
        let unflighted = |db: &Arc<Database>, query: &Arc<Query>, plan: &Arc<PhysicalPlan>| {
            let cx = Arc::new(CachingExecutor::new(Arc::clone(db), CostModel::default()));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let cx = Arc::clone(&cx);
                    let query = Arc::clone(query);
                    let plan = Arc::clone(plan);
                    foss_check::thread::spawn(move || {
                        cx.execute_unflighted(&query, &plan, None).unwrap();
                    })
                })
                .collect();
            for w in workers {
                w.join();
            }
            assert_eq!(
                cx.stats().executions,
                1,
                "single-flight violated: executed twice"
            );
        };

        let (db, query, plan) = fixture();
        let report = {
            let (db, query, plan) = (db.clone(), query.clone(), plan.clone());
            check_exhaustive(50_000, move || unflighted(&db, &query, &plan))
        };
        let failure = report.assert_failed();
        assert!(
            failure.message.contains("single-flight violated"),
            "unexpected failure: {}",
            failure.render()
        );

        // The recorded choice list replays the exact same interleaving.
        let choices = failure.choices.clone();
        let trace = failure.trace.clone();
        let replayed = {
            let (db, query, plan) = (db.clone(), query.clone(), plan.clone());
            replay(&choices, move || unflighted(&db, &query, &plan))
        };
        let refailure = replayed.assert_failed();
        assert_eq!(
            refailure.trace, trace,
            "replay diverged from original trace"
        );

        // Random search finds it too, and its seed alone reproduces it.
        let random = {
            let (db, query, plan) = (db.clone(), query.clone(), plan.clone());
            check_random(0xF055_0006, 2_000, move || unflighted(&db, &query, &plan))
        };
        let rfailure = random.assert_failed();
        let seed = rfailure.seed.expect("random failure must carry its seed");
        let rtrace = rfailure.trace.clone();
        let reseeded = replay_seed(seed, move || unflighted(&db, &query, &plan));
        assert_eq!(
            reseeded.assert_failed().trace,
            rtrace,
            "seed replay diverged from original trace"
        );
    }
}
