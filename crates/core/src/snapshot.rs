//! Read-only planning snapshots — the serving half of the core split.
//!
//! [`Foss`](crate::trainer::Foss) owns the mutable training state (PPO
//! agents, execution buffer, AAM optimiser moments). A [`PlannerSnapshot`]
//! is an immutable copy of everything inference needs — frozen agent
//! policies, the AAM weights, the plan encoder/action space, the expert
//! optimizer handle and a frozen view of the execution buffer — behind
//! `Arc`s, so cloning a snapshot is a handful of reference-count bumps and
//! [`PlannerSnapshot::optimize`] takes `&self`: any number of threads can
//! plan concurrently over one snapshot while training continues elsewhere.
//!
//! [`SnapshotCell`] is the publication point: the trainer calls
//! [`SnapshotCell::publish`] after an update round (hot model swap), servers
//! call [`SnapshotCell::load`] per query and keep planning on whatever
//! generation they loaded — no lock is held while planning.

use std::path::Path;
use std::sync::Arc;

use foss_common::sync::atomic::{AtomicU64, Ordering};
use foss_common::sync::RwLock;
use foss_common::{ByteReader, ByteWriter, Codec, FossError, FxHashMap, QueryId, Result};
use foss_optimizer::{PhysicalPlan, TraditionalOptimizer};
use foss_query::Query;

use crate::aam::AdvantageModel;
use crate::actions::ActionSpace;
use crate::advantage::AdvantageScale;
use crate::agent::{FrozenPolicy, PlanPolicy};
use crate::config::FossConfig;
use crate::encoding::{EncodedPlan, PlanEncoder};
use crate::envs::SimEnv;
use crate::episode::run_episode_greedy;
use crate::execbuf::ExecutionBuffer;
use crate::selector::select_best;
use crate::trainer::Inference;

/// Magic bytes opening every serialized snapshot (`FSNP` little-endian).
pub const SNAPSHOT_MAGIC: u32 = 0x504e_5346;

/// Version of the snapshot wire/file format produced by
/// [`PlannerSnapshot::to_bytes`]. Bump on any layout change; decode rejects
/// versions it does not understand.
pub const SNAPSHOT_VERSION: u32 = 1;

/// An immutable, cheaply-cloneable view of a trained FOSS planner.
///
/// Produced by [`Foss::snapshot`](crate::trainer::Foss::snapshot); see the
/// module docs for the threading contract.
#[derive(Clone)]
pub struct PlannerSnapshot {
    cfg: FossConfig,
    scale: AdvantageScale,
    optimizer: Arc<TraditionalOptimizer>,
    encoder: Arc<PlanEncoder>,
    space: Arc<ActionSpace>,
    policies: Arc<Vec<FrozenPolicy>>,
    aam: Arc<AdvantageModel>,
    buffer: Arc<ExecutionBuffer>,
    originals: Arc<FxHashMap<QueryId, PhysicalPlan>>,
}

impl PlannerSnapshot {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        cfg: FossConfig,
        scale: AdvantageScale,
        optimizer: Arc<TraditionalOptimizer>,
        encoder: Arc<PlanEncoder>,
        space: Arc<ActionSpace>,
        policies: Arc<Vec<FrozenPolicy>>,
        aam: Arc<AdvantageModel>,
        buffer: Arc<ExecutionBuffer>,
        originals: Arc<FxHashMap<QueryId, PhysicalPlan>>,
    ) -> Self {
        Self {
            cfg,
            scale,
            optimizer,
            encoder,
            space,
            policies,
            aam,
            buffer,
            originals,
        }
    }

    /// The configuration the planner was trained with.
    pub fn config(&self) -> &FossConfig {
        &self.cfg
    }

    /// The frozen advantage model.
    pub fn aam(&self) -> &AdvantageModel {
        &self.aam
    }

    /// The expert optimizer this snapshot repairs plans from.
    pub fn optimizer(&self) -> &Arc<TraditionalOptimizer> {
        &self.optimizer
    }

    /// Executed plans frozen into this snapshot (staleness indicator).
    pub fn buffer_plans(&self) -> usize {
        self.buffer.total_plans()
    }

    /// The expert (DP) plan for `query` — the fallback every serving-path
    /// decision can reach without touching learned state. Answered from the
    /// frozen original-plan cache when the query was seen in training.
    pub fn expert_plan(&self, query: &Query) -> Result<PhysicalPlan> {
        if let Some(p) = self.originals.get(&query.id) {
            return Ok(p.clone());
        }
        self.optimizer.optimize(query)
    }

    /// Doctored plan for `query` (read-only; see module docs).
    pub fn optimize(&self, query: &Query) -> Result<PhysicalPlan> {
        Ok(self.optimize_detailed(query)?.plan)
    }

    /// Doctored plan with provenance (selected step, candidate count, AAM
    /// confidence).
    pub fn optimize_detailed(&self, query: &Query) -> Result<Inference> {
        let original = self.expert_plan(query)?;
        self.optimize_detailed_from(query, &original)
    }

    /// Like [`PlannerSnapshot::optimize_detailed`] with the expert plan
    /// supplied by the caller — the serving path already needs the expert
    /// plan for its fallback, so this avoids planning it twice per query.
    /// `original` must be this snapshot's [`PlannerSnapshot::expert_plan`]
    /// for `query`.
    pub fn optimize_detailed_from(
        &self,
        query: &Query,
        original: &PhysicalPlan,
    ) -> Result<Inference> {
        let policies: Vec<&dyn PlanPolicy> =
            self.policies.iter().map(|p| p as &dyn PlanPolicy).collect();
        infer(
            &policies,
            &self.aam,
            &self.buffer,
            &self.scale,
            &self.optimizer,
            &self.encoder,
            &self.space,
            &self.cfg,
            query,
            original,
        )
    }

    /// Serialize this snapshot to the versioned binary format.
    ///
    /// The payload carries everything inference needs *except* the expert
    /// [`TraditionalOptimizer`], which is a pure function of the workload
    /// (name, seed, scale) and is rebuilt by the loading process —
    /// see [`PlannerSnapshot::from_bytes`]. Maps are key-sorted before
    /// writing, so the same logical snapshot always yields the same bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(SNAPSHOT_MAGIC);
        w.put_u32(SNAPSHOT_VERSION);
        self.cfg.encode(&mut w);
        self.scale.encode(&mut w);
        // Fully-qualified: PlanEncoder/ActionSpace have inherent `encode`
        // methods (plan encoding / action decoding) that shadow the trait.
        Codec::encode(self.encoder.as_ref(), &mut w);
        Codec::encode(self.space.as_ref(), &mut w);
        self.policies.as_ref().encode(&mut w);
        self.aam.encode(&mut w);
        self.buffer.encode(&mut w);
        let mut keys: Vec<QueryId> = self.originals.keys().copied().collect();
        keys.sort_unstable();
        w.put_usize(keys.len());
        for qid in keys {
            qid.encode(&mut w);
            self.originals[&qid].encode(&mut w);
        }
        w.into_bytes()
    }

    /// Reconstruct a snapshot from [`PlannerSnapshot::to_bytes`] output.
    ///
    /// `optimizer` must be the expert optimizer of the workload the snapshot
    /// was trained on (rebuilt deterministically from the same workload name,
    /// seed and scale). Plans produced by the result are bit-identical to
    /// the snapshot that was serialized.
    pub fn from_bytes(bytes: &[u8], optimizer: Arc<TraditionalOptimizer>) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_u32()?;
        if magic != SNAPSHOT_MAGIC {
            return Err(FossError::Serde(format!(
                "not a planner snapshot (magic {magic:#010x})"
            )));
        }
        let version = r.get_u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(FossError::Serde(format!(
                "unsupported snapshot version {version} (supported: {SNAPSHOT_VERSION})"
            )));
        }
        let cfg = FossConfig::decode(&mut r)?;
        let scale = AdvantageScale::decode(&mut r)?;
        let encoder = <PlanEncoder as Codec>::decode(&mut r)?;
        let space = <ActionSpace as Codec>::decode(&mut r)?;
        let policies: Vec<FrozenPolicy> = Vec::decode(&mut r)?;
        let aam = AdvantageModel::decode(&mut r)?;
        let buffer = ExecutionBuffer::decode(&mut r)?;
        let mut originals = FxHashMap::default();
        for _ in 0..r.get_len()? {
            let qid = QueryId::decode(&mut r)?;
            originals.insert(qid, PhysicalPlan::decode(&mut r)?);
        }
        r.finish()?;
        Ok(Self {
            cfg,
            scale,
            optimizer,
            encoder: Arc::new(encoder),
            space: Arc::new(space),
            policies: Arc::new(policies),
            aam: Arc::new(aam),
            buffer: Arc::new(buffer),
            originals: Arc::new(originals),
        })
    }

    /// Write the snapshot to `path` (atomic enough for single-writer use:
    /// the file appears fully written or not at all via a temp + rename).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let bytes = self.to_bytes();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)
            .and_then(|()| std::fs::rename(&tmp, path))
            .map_err(|e| FossError::Serde(format!("cannot write {}: {e}", path.display())))
    }

    /// Read a snapshot saved by [`PlannerSnapshot::save`]; `optimizer` as in
    /// [`PlannerSnapshot::from_bytes`].
    pub fn load(path: impl AsRef<Path>, optimizer: Arc<TraditionalOptimizer>) -> Result<Self> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| FossError::Serde(format!("cannot read {}: {e}", path.display())))?;
        Self::from_bytes(&bytes, optimizer)
    }
}

/// The shared greedy-inference pipeline: per-policy greedy episodes, a
/// per-policy AAM tournament, then a final tournament among champions.
///
/// Both [`Foss::optimize_detailed`](crate::trainer::Foss::optimize_detailed)
/// (live agents) and [`PlannerSnapshot::optimize_detailed`] (frozen
/// policies) run exactly this function, which is what makes snapshot plans
/// bit-identical to trainer plans.
#[allow(clippy::too_many_arguments)]
pub(crate) fn infer(
    policies: &[&dyn PlanPolicy],
    aam: &AdvantageModel,
    buffer: &ExecutionBuffer,
    scale: &AdvantageScale,
    optimizer: &TraditionalOptimizer,
    encoder: &PlanEncoder,
    space: &ActionSpace,
    cfg: &FossConfig,
    query: &Query,
    original: &PhysicalPlan,
) -> Result<Inference> {
    // Per-policy greedy episode → per-policy champion.
    let mut champions = Vec::with_capacity(policies.len());
    for policy in policies {
        let mut env = SimEnv::new(aam, buffer, scale.clone());
        let res = run_episode_greedy(
            *policy, optimizer, encoder, space, query, original, &mut env, cfg,
        )?;
        let mut cands: Vec<&EncodedPlan> = vec![&res.original.encoded];
        for v in &res.visited {
            cands.push(&v.encoded);
        }
        let idx = select_best(aam, &cands);
        let ctx = if idx == 0 {
            res.original.clone()
        } else {
            res.visited[idx - 1].clone()
        };
        champions.push((ctx, idx));
    }
    // Multi-agent: final tournament among champions.
    let encs: Vec<&EncodedPlan> = champions.iter().map(|(c, _)| &c.encoded).collect();
    let winner = select_best(aam, &encs);
    let (ctx, step) = champions.swap_remove(winner);
    let candidates = cfg.num_agents * (cfg.max_steps + 1);
    // Confidence: the AAM's advantage score of the selected plan over the
    // expert plan (0 when the expert plan was kept — there is nothing to be
    // confident about).
    let aam_confidence = if step == 0 {
        0
    } else {
        aam.predict(&encoder.encode(query, original, 0.0), &ctx.encoded)
    };
    Ok(Inference {
        plan: ctx.plan,
        selected_step: step,
        candidates,
        aam_confidence,
    })
}

/// A hot-swappable snapshot slot: the trainer publishes, servers load.
///
/// `load` clones an `Arc` under a read lock (nanoseconds); planning happens
/// entirely outside the lock, so a publish never blocks behind an in-flight
/// query and a query never observes a half-published model.
///
/// Generic over the payload (defaulting to [`PlannerSnapshot`], the serving
/// use) so the publish/load protocol itself can be model-checked with small
/// payloads — the checked code is exactly what serves production traffic.
pub struct SnapshotCell<T = PlannerSnapshot> {
    slot: RwLock<Arc<T>>,
    generation: AtomicU64,
}

impl<T> SnapshotCell<T> {
    /// Start serving from `snapshot` (generation 0).
    pub fn new(snapshot: T) -> Self {
        Self {
            slot: RwLock::new(Arc::new(snapshot)),
            generation: AtomicU64::new(0),
        }
    }

    /// The snapshot to plan with right now.
    pub fn load(&self) -> Arc<T> {
        self.slot.read().clone()
    }

    /// Atomically replace the served snapshot (hot model swap).
    ///
    /// The slot is swapped *before* the generation bump: a reader that
    /// observes generation `g` is guaranteed any subsequent `load` returns
    /// the payload of publish `g` or newer. (The converse — a fresh payload
    /// with a stale counter — only makes staleness checks conservative.)
    pub fn publish(&self, snapshot: T) {
        *self.slot.write() = Arc::new(snapshot);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// How many times [`SnapshotCell::publish`] has run.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envs::tests_support::TestWorld;
    use crate::trainer::Foss;
    use foss_executor::CachingExecutor;

    fn trained_foss(world: &TestWorld, seed: u64) -> Foss {
        let executor = Arc::new(CachingExecutor::new(
            world.db.clone(),
            *world.opt.cost_model(),
        ));
        let mut foss = Foss::new(
            Arc::new(world.opt.clone()),
            executor,
            3,
            world.db.stats().iter().map(|s| s.row_count).collect(),
            FossConfig {
                episodes_per_update: 6,
                seed,
                ..FossConfig::tiny()
            },
        );
        foss.train(std::slice::from_ref(&world.query), 1).unwrap();
        foss
    }

    #[test]
    fn snapshot_plans_match_trainer_plans() {
        let world = TestWorld::new(21);
        let foss = trained_foss(&world, 21);
        let snap = foss.snapshot();
        let live = foss.optimize_detailed(&world.query).unwrap();
        let frozen = snap.optimize_detailed(&world.query).unwrap();
        assert_eq!(live.plan.fingerprint(), frozen.plan.fingerprint());
        assert_eq!(live.selected_step, frozen.selected_step);
        assert_eq!(live.candidates, frozen.candidates);
        assert_eq!(live.aam_confidence, frozen.aam_confidence);
    }

    #[test]
    fn snapshot_clone_is_shallow_and_identical() {
        let world = TestWorld::new(22);
        let foss = trained_foss(&world, 22);
        let a = foss.snapshot();
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.aam, &b.aam), "clone must share weights");
        assert_eq!(
            a.optimize(&world.query).unwrap().fingerprint(),
            b.optimize(&world.query).unwrap().fingerprint()
        );
    }

    #[test]
    fn many_threads_plan_over_one_snapshot() {
        let world = TestWorld::new(23);
        let foss = trained_foss(&world, 23);
        let snap = foss.snapshot();
        let serial = snap.optimize(&world.query).unwrap().fingerprint();
        let fingerprints: Vec<u64> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let snap = snap.clone();
                    let query = world.query.clone();
                    scope.spawn(move || snap.optimize(&query).unwrap().fingerprint())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for fp in fingerprints {
            assert_eq!(fp, serial, "concurrent planning must be deterministic");
        }
    }

    #[test]
    fn cell_publishes_new_generations() {
        let world = TestWorld::new(24);
        let mut foss = trained_foss(&world, 24);
        let cell = SnapshotCell::new(foss.snapshot());
        let first = cell.load();
        assert_eq!(cell.generation(), 0);
        foss.train_iteration(std::slice::from_ref(&world.query), 2)
            .unwrap();
        cell.publish(foss.snapshot());
        let second = cell.load();
        assert_eq!(cell.generation(), 1);
        assert!(!Arc::ptr_eq(&first, &second), "publish must swap the slot");
        // The retired generation keeps working (readers finish on it).
        first.optimize(&world.query).unwrap();
    }

    #[test]
    fn serialized_snapshot_round_trips_bit_identically() {
        let world = TestWorld::new(26);
        let foss = trained_foss(&world, 26);
        let snap = foss.snapshot();
        let bytes = snap.to_bytes();
        let back = PlannerSnapshot::from_bytes(&bytes, snap.optimizer().clone()).unwrap();
        let live = snap.optimize_detailed(&world.query).unwrap();
        let loaded = back.optimize_detailed(&world.query).unwrap();
        assert_eq!(live.plan.fingerprint(), loaded.plan.fingerprint());
        assert_eq!(live.selected_step, loaded.selected_step);
        assert_eq!(live.candidates, loaded.candidates);
        assert_eq!(live.aam_confidence, loaded.aam_confidence);
        // Canonical encoding: re-serializing the decoded snapshot is stable.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn snapshot_decode_rejects_bad_magic_and_version() {
        let world = TestWorld::new(27);
        let foss = trained_foss(&world, 27);
        let snap = foss.snapshot();
        let opt = snap.optimizer().clone();
        let mut bytes = snap.to_bytes();
        // Corrupt the version field.
        bytes[4] = 0xEE;
        assert!(PlannerSnapshot::from_bytes(&bytes, opt.clone()).is_err());
        // Corrupt the magic.
        bytes[4] = SNAPSHOT_VERSION as u8;
        bytes[0] ^= 0xFF;
        assert!(PlannerSnapshot::from_bytes(&bytes, opt.clone()).is_err());
        // Truncation fails loudly too.
        let good = snap.to_bytes();
        assert!(PlannerSnapshot::from_bytes(&good[..good.len() - 3], opt).is_err());
    }

    #[test]
    fn snapshot_save_load_file_round_trip() {
        let world = TestWorld::new(28);
        let foss = trained_foss(&world, 28);
        let snap = foss.snapshot();
        let dir = std::env::temp_dir().join(format!("foss-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("planner.fsnp");
        snap.save(&path).unwrap();
        let loaded = PlannerSnapshot::load(&path, snap.optimizer().clone()).unwrap();
        assert_eq!(
            snap.optimize(&world.query).unwrap().fingerprint(),
            loaded.optimize(&world.query).unwrap().fingerprint()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expert_plan_matches_optimizer_for_unseen_queries() {
        let world = TestWorld::new(25);
        let foss = trained_foss(&world, 25);
        let snap = foss.snapshot();
        let direct = world.opt.optimize(&world.query).unwrap();
        assert_eq!(
            snap.expert_plan(&world.query).unwrap().fingerprint(),
            direct.fingerprint()
        );
    }
}
