//! FOSS: a self-learned doctor for query optimizers (ICDE 2024).
//!
//! The paper's primary contribution, reproduced end to end:
//!
//! * **Planner** — a PPO agent that repairs the expert optimizer's plan with
//!   `Swap(Tl, Tr)` / `Override(Oi, Opj)` actions over the incomplete plan,
//!   under validity masks and the post-swap heuristic restriction
//!   ([`actions`], [`agent`], [`episode`]);
//! * **Asymmetric advantage model (AAM)** — a transformer state network over
//!   encoded plans plus a position-aware difference head, trained with the
//!   asymmetric focal loss and label smoothing; serves as both the candidate
//!   selector and the simulated environment's reward model ([`encoding`],
//!   [`state_net`], [`aam`], [`selector`]);
//! * **Simulated learner** — the Dyna-style loop of Fig. 3: bootstrap real
//!   executions into an execution buffer, train the AAM, let the agent churn
//!   cheap simulated episodes, validate promising plans for real, retrain
//!   ([`execbuf`], [`envs`], [`trainer`]).
//!
//! The expert engine, executor and benchmark substrates live in sibling
//! crates; see the workspace `DESIGN.md` for the full inventory.

pub mod aam;
pub mod actions;
pub mod advantage;
pub mod agent;
pub mod config;
pub mod encoding;
pub mod envs;
pub mod episode;
pub mod execbuf;
pub mod selector;
pub mod snapshot;
pub mod state_net;
pub mod trainer;

pub use aam::AdvantageModel;
pub use actions::{Action, ActionSpace};
pub use advantage::AdvantageScale;
pub use agent::{FrozenPolicy, PlanPolicy, PlannerAgent};
pub use config::FossConfig;
pub use encoding::{EncodedPlan, PlanEncoder};
pub use envs::{RealEnv, RewardOracle, SimEnv};
pub use episode::{run_episode, run_episode_greedy, EpisodeResult};
pub use execbuf::{ExecutedPlan, ExecutionBuffer};
pub use selector::select_best;
pub use snapshot::{PlannerSnapshot, SnapshotCell, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use trainer::{Foss, Inference, TrainReport};
