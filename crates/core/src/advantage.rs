//! Advantage definition and discretisation (§III Reward, §IV-B).
//!
//! `Adv_init(CP_l, CP_r) = U(CP_l) − U(CP_r) ∈ (−∞, 1]` measures how much
//! better the *right* plan is than the *left* one. With the performance
//! utility `U` anchored on the left plan this is `1 − lat(r)/lat(l)`: the
//! fraction of the left plan's time the right plan saves. The ordered split
//! points `{d_i}` partition `(−∞, 1]` into `l + 1` intervals that map to the
//! discrete scores `0..=l`; FOSS uses `{0.05, 0.50}` → scores `{0, 1, 2}`.

use serde::{Deserialize, Serialize};

/// The discretisation scale: split points plus helpers for the paper's
/// `Adv`, `D̂_k` and episode-bounty arithmetic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdvantageScale {
    points: Vec<f64>,
}

impl AdvantageScale {
    /// Build from ordered split points in `[0, 1)`.
    pub fn new(points: Vec<f64>) -> Self {
        assert!(!points.is_empty(), "need at least one split point");
        assert!(
            points.windows(2).all(|w| w[0] < w[1]),
            "split points must be strictly increasing"
        );
        assert!(points.iter().all(|&d| (0.0..1.0).contains(&d)));
        Self { points }
    }

    /// The paper's default `{0.05, 0.50}`.
    pub fn paper_default() -> Self {
        Self::new(vec![0.05, 0.50])
    }

    /// Number of discrete scores (`l + 1`).
    pub fn num_scores(&self) -> usize {
        self.points.len() + 1
    }

    /// `l` — number of split points.
    pub fn l(&self) -> usize {
        self.points.len()
    }

    /// Continuous initial advantage of `right` over `left` given latencies.
    /// Both latencies must be positive.
    pub fn initial_advantage(&self, lat_left: f64, lat_right: f64) -> f64 {
        debug_assert!(lat_left > 0.0 && lat_right > 0.0);
        1.0 - lat_right / lat_left
    }

    /// Discretise a continuous advantage: `Adv = k − 1` where
    /// `Adv_init ∈ D_k` (Eq. 2). Returns a value in `0..num_scores()`.
    pub fn score(&self, adv_init: f64) -> usize {
        self.points.iter().take_while(|&&d| adv_init > d).count()
    }

    /// Discrete advantage of `right` over `left` from latencies.
    pub fn score_latencies(&self, lat_left: f64, lat_right: f64) -> usize {
        self.score(self.initial_advantage(lat_left, lat_right))
    }

    /// Midpoint value `D̂_k = (d_k + d_{k−1}) / 2` with `D̂_0 = 0` and
    /// `d_0 = 0` (used by the episode bounty).
    pub fn d_hat(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            let prev = if k == 1 { 0.0 } else { self.points[k - 2] };
            (self.points[k - 1] + prev) / 2.0
        }
    }
}

impl foss_common::Codec for AdvantageScale {
    fn encode(&self, w: &mut foss_common::ByteWriter) {
        foss_common::Codec::encode(&self.points, w);
    }
    fn decode(r: &mut foss_common::ByteReader<'_>) -> foss_common::Result<Self> {
        let points: Vec<f64> = foss_common::Codec::decode(r)?;
        if points.is_empty()
            || !points.windows(2).all(|w| w[0] < w[1])
            || !points.iter().all(|&d| (0.0..1.0).contains(&d))
        {
            return Err(foss_common::FossError::Serde(format!(
                "decoded advantage scale invalid: {points:?}"
            )));
        }
        Ok(Self { points })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> AdvantageScale {
        AdvantageScale::paper_default()
    }

    #[test]
    fn initial_advantage_ranges() {
        let s = scale();
        // Equal plans → 0; right twice as fast → 0.5; right 10× slower → -9.
        assert_eq!(s.initial_advantage(100.0, 100.0), 0.0);
        assert_eq!(s.initial_advantage(100.0, 50.0), 0.5);
        assert_eq!(s.initial_advantage(100.0, 1000.0), -9.0);
        // Upper bound approaches 1 but never reaches it.
        assert!(s.initial_advantage(100.0, 1e-9) < 1.0);
    }

    #[test]
    fn score_boundaries() {
        let s = scale();
        // (−∞, 0.05] → 0, (0.05, 0.50] → 1, (0.50, 1] → 2.
        assert_eq!(s.score(-5.0), 0);
        assert_eq!(s.score(0.0), 0);
        assert_eq!(s.score(0.05), 0);
        assert_eq!(s.score(0.050001), 1);
        assert_eq!(s.score(0.5), 1);
        assert_eq!(s.score(0.500001), 2);
        assert_eq!(s.score(0.99), 2);
    }

    #[test]
    fn score_latencies_semantics() {
        let s = scale();
        // Right saves 60% → score 2 ("significantly superior").
        assert_eq!(s.score_latencies(100.0, 40.0), 2);
        // Right saves 20% → score 1.
        assert_eq!(s.score_latencies(100.0, 80.0), 1);
        // Right saves 3% (noise) or is worse → score 0.
        assert_eq!(s.score_latencies(100.0, 97.0), 0);
        assert_eq!(s.score_latencies(100.0, 500.0), 0);
    }

    #[test]
    fn d_hat_values() {
        let s = scale();
        assert_eq!(s.d_hat(0), 0.0);
        assert!((s.d_hat(1) - 0.025).abs() < 1e-12);
        assert!((s.d_hat(2) - 0.275).abs() < 1e-12);
    }

    #[test]
    fn num_scores_tracks_points() {
        assert_eq!(scale().num_scores(), 3);
        assert_eq!(AdvantageScale::new(vec![0.1]).num_scores(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_points_rejected() {
        let _ = AdvantageScale::new(vec![0.5, 0.05]);
    }
}
