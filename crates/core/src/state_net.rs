//! The transformer state network `ϕ` (§IV-A State Network).
//!
//! Node features pass through per-feature embedding layers, are concatenated
//! into node vectors (`N_i ⊕ height_i ⊕ ns_i`), flow through multi-head
//! attention blocks whose scores are restricted by the reachability mask,
//! get mean-pooled and — concatenated with the step feature — projected by a
//! linear layer into the final `statevec`.

use foss_common::{ByteReader, ByteWriter, Codec};
use foss_nn::{
    segment_additive_mask, Embedding, Graph, LayerNorm, Linear, Matrix, MultiHeadAttention,
    ParamSet, Var,
};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::encoding::{EncodedPlan, HEIGHT_VOCAB, OP_VOCAB, ROWS_VOCAB, SEL_VOCAB, STRUCT_VOCAB};

/// One attention block: MHA + residual + layer norm, FFN + residual + norm.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Block {
    attn: MultiHeadAttention,
    norm1: LayerNorm,
    ff1: Linear,
    ff2: Linear,
    norm2: LayerNorm,
}

/// The state network shared (architecturally) by the planner's agent and the
/// AAM — each instantiates its own parameters, as in the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StateNetwork {
    op_emb: Embedding,
    table_emb: Embedding,
    sel_emb: Embedding,
    rows_emb: Embedding,
    height_emb: Embedding,
    struct_emb: Embedding,
    blocks: Vec<Block>,
    out: Linear,
    /// Transformer width.
    pub d_model: usize,
    /// Output (`statevec`) width.
    pub d_state: usize,
}

impl StateNetwork {
    /// Allocate a network in `set`. `d_model` must be divisible by 8 (four
    /// node-feature embeddings of `d/8` plus two structural embeddings of
    /// `d/4` concatenate to exactly `d_model`).
    pub fn new(
        set: &mut ParamSet,
        table_vocab: usize,
        d_model: usize,
        d_state: usize,
        heads: usize,
        num_blocks: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(d_model % 8, 0, "d_model must be divisible by 8");
        let de = d_model / 8;
        let dh = d_model / 4;
        let blocks = (0..num_blocks)
            .map(|_| Block {
                attn: MultiHeadAttention::new(set, d_model, heads, rng),
                norm1: LayerNorm::new(set, d_model),
                ff1: Linear::new(set, d_model, d_model * 2, rng),
                ff2: Linear::new(set, d_model * 2, d_model, rng),
                norm2: LayerNorm::new(set, d_model),
            })
            .collect();
        Self {
            op_emb: Embedding::new(set, OP_VOCAB, de, rng),
            table_emb: Embedding::new(set, table_vocab, de, rng),
            sel_emb: Embedding::new(set, SEL_VOCAB, de, rng),
            rows_emb: Embedding::new(set, ROWS_VOCAB, de, rng),
            height_emb: Embedding::new(set, HEIGHT_VOCAB, dh, rng),
            struct_emb: Embedding::new(set, STRUCT_VOCAB, dh, rng),
            blocks,
            out: Linear::new(set, d_model + 1, d_state, rng),
            d_model,
            d_state,
        }
    }

    /// Record the forward pass for one encoded plan; returns the `1×d_state`
    /// state representation. Delegates to [`StateNetwork::forward_batch`], so
    /// single and batched inference share one code path (and bit patterns).
    pub fn forward(&self, g: &mut Graph, set: &ParamSet, plan: &EncodedPlan) -> Var {
        self.forward_batch(g, set, &[plan])
    }

    /// Forward a batch of plans through ONE stacked computation, producing
    /// `B×d_state` state vectors.
    ///
    /// All plans' nodes are concatenated into a single `ΣL×d_model` sequence:
    /// embeddings become one gather per feature, the attention blocks run on
    /// block-diagonal segment kernels (attention never crosses a plan
    /// boundary), and pooling is a per-segment row mean. Because every op
    /// treats rows/segments independently, row `i` of the result is
    /// bit-identical to `forward(plans[i])` — while graph-construction and
    /// kernel-dispatch overhead is paid once per batch instead of per plan.
    pub fn forward_batch(&self, g: &mut Graph, set: &ParamSet, plans: &[&EncodedPlan]) -> Var {
        assert!(!plans.is_empty(), "cannot encode an empty batch");
        assert!(
            plans.iter().all(|p| !p.is_empty()),
            "cannot encode an empty plan"
        );
        let cat = |f: for<'a> fn(&'a EncodedPlan) -> &'a [usize]| -> Vec<usize> {
            plans.iter().flat_map(|p| f(p).iter().copied()).collect()
        };
        // Per-feature embeddings → node vectors N_i ⊕ height_i ⊕ ns_i,
        // one gather per feature for the whole batch.
        let op = self.op_emb.forward(g, set, &cat(|p| p.ops.as_slice()));
        let table = self
            .table_emb
            .forward(g, set, &cat(|p| p.tables.as_slice()));
        let sel = self.sel_emb.forward(g, set, &cat(|p| p.sels.as_slice()));
        let rows = self.rows_emb.forward(g, set, &cat(|p| p.rows.as_slice()));
        let height = self
            .height_emb
            .forward(g, set, &cat(|p| p.heights.as_slice()));
        let st = self
            .struct_emb
            .forward(g, set, &cat(|p| p.structures.as_slice()));
        let mut x = g.concat_cols(&[op, table, sel, rows, height, st]);

        let reaches: Vec<&[Vec<bool>]> = plans.iter().map(|p| p.reach.as_slice()).collect();
        let (mask, segs) = segment_additive_mask(&reaches);
        for block in &self.blocks {
            let attended = block.attn.forward_batch(g, set, x, &mask, &segs);
            let normed = block.norm1.forward_residual(g, set, x, attended);
            let h = block.ff1.forward(g, set, normed);
            let h = g.relu(h);
            let h = block.ff2.forward(g, set, h);
            x = block.norm2.forward_residual(g, set, normed, h);
        }

        let pooled = g.seg_mean_rows(x, &segs);
        let steps = g.input(Matrix::from_vec(
            plans.len(),
            1,
            plans.iter().map(|p| p.step).collect(),
        ));
        let with_step = g.concat_cols(&[pooled, steps]);
        self.out.forward(g, set, with_step)
    }
}

impl Codec for Block {
    fn encode(&self, w: &mut ByteWriter) {
        self.attn.encode(w);
        self.norm1.encode(w);
        self.ff1.encode(w);
        self.ff2.encode(w);
        self.norm2.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> foss_common::Result<Self> {
        Ok(Self {
            attn: MultiHeadAttention::decode(r)?,
            norm1: LayerNorm::decode(r)?,
            ff1: Linear::decode(r)?,
            ff2: Linear::decode(r)?,
            norm2: LayerNorm::decode(r)?,
        })
    }
}

impl Codec for StateNetwork {
    fn encode(&self, w: &mut ByteWriter) {
        self.op_emb.encode(w);
        self.table_emb.encode(w);
        self.sel_emb.encode(w);
        self.rows_emb.encode(w);
        self.height_emb.encode(w);
        self.struct_emb.encode(w);
        self.blocks.encode(w);
        self.out.encode(w);
        w.put_usize(self.d_model);
        w.put_usize(self.d_state);
    }
    fn decode(r: &mut ByteReader<'_>) -> foss_common::Result<Self> {
        Ok(Self {
            op_emb: Embedding::decode(r)?,
            table_emb: Embedding::decode(r)?,
            sel_emb: Embedding::decode(r)?,
            rows_emb: Embedding::decode(r)?,
            height_emb: Embedding::decode(r)?,
            struct_emb: Embedding::decode(r)?,
            blocks: Vec::decode(r)?,
            out: Linear::decode(r)?,
            d_model: r.get_usize()?,
            d_state: r.get_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_plan(step: f32) -> EncodedPlan {
        EncodedPlan {
            ops: vec![2, 0, 1],
            tables: vec![0, 1, 2],
            sels: vec![10, 0, 3],
            rows: vec![8, 5, 4],
            heights: vec![1, 0, 0],
            structures: vec![3, 0, 1],
            reach: vec![
                vec![true, true, true],
                vec![true, true, false],
                vec![true, false, true],
            ],
            step,
        }
    }

    fn network() -> (StateNetwork, ParamSet) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut set = ParamSet::new();
        let net = StateNetwork::new(&mut set, 4, 32, 24, 2, 2, &mut rng);
        (net, set)
    }

    #[test]
    fn output_shape_is_one_by_dstate() {
        let (net, set) = network();
        let mut g = Graph::new();
        let v = net.forward(&mut g, &set, &tiny_plan(0.0));
        let m = g.value(v);
        assert_eq!((m.rows, m.cols), (1, 24));
        assert!(m.data.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn step_feature_changes_output() {
        let (net, set) = network();
        let mut g = Graph::new();
        let a = net.forward(&mut g, &set, &tiny_plan(0.0));
        let b = net.forward(&mut g, &set, &tiny_plan(1.0));
        assert_ne!(g.value(a).data, g.value(b).data);
    }

    #[test]
    fn different_plans_embed_differently() {
        let (net, set) = network();
        let mut g = Graph::new();
        let mut other = tiny_plan(0.0);
        other.ops[0] = 4;
        let a = net.forward(&mut g, &set, &tiny_plan(0.0));
        let b = net.forward(&mut g, &set, &other);
        assert_ne!(g.value(a).data, g.value(b).data);
    }

    #[test]
    fn forward_is_deterministic() {
        let (net, set) = network();
        let mut g1 = Graph::new();
        let a = net.forward(&mut g1, &set, &tiny_plan(0.3));
        let mut g2 = Graph::new();
        let b = net.forward(&mut g2, &set, &tiny_plan(0.3));
        assert_eq!(g1.value(a).data, g2.value(b).data);
    }

    #[test]
    fn batch_stacks_rows() {
        let (net, set) = network();
        let p1 = tiny_plan(0.0);
        let p2 = tiny_plan(0.5);
        let mut g = Graph::new();
        let batch = net.forward_batch(&mut g, &set, &[&p1, &p2]);
        let m = g.value(batch);
        assert_eq!((m.rows, m.cols), (2, 24));
        // Row 0 must equal the single-plan forward of p1.
        let mut g2 = Graph::new();
        let single = net.forward(&mut g2, &set, &p1);
        assert_eq!(m.row(0), g2.value(single).row(0));
    }

    #[test]
    fn ragged_batch_matches_singletons_bitwise() {
        // Plans of different node counts in one batch: padding columns in
        // the stacked attention must not perturb any plan's state vector.
        let (net, set) = network();
        let short = tiny_plan(0.25);
        let long = EncodedPlan {
            ops: vec![2, 0, 1, 3, 4],
            tables: vec![0, 1, 2, 3, 0],
            sels: vec![10, 0, 3, 5, 10],
            rows: vec![8, 5, 4, 2, 9],
            heights: vec![2, 1, 0, 0, 1],
            structures: vec![3, 0, 1, 0, 1],
            reach: vec![
                vec![true, true, true, false, true],
                vec![true, true, false, false, false],
                vec![true, false, true, true, false],
                vec![false, false, true, true, false],
                vec![true, false, false, false, true],
            ],
            step: 0.75,
        };
        let mut g = Graph::new();
        let batch = net.forward_batch(&mut g, &set, &[&short, &long, &short]);
        let m = g.value(batch).clone();
        assert_eq!((m.rows, m.cols), (3, 24));
        for (row, plan) in [(0, &short), (1, &long), (2, &short)] {
            let mut g1 = Graph::new();
            let single = net.forward(&mut g1, &set, plan);
            assert_eq!(m.row(row), g1.value(single).row(0), "row {row} diverged");
        }
    }

    #[test]
    fn variable_length_plans_supported() {
        let (net, set) = network();
        let long = EncodedPlan {
            ops: vec![2; 9],
            tables: vec![0; 9],
            sels: vec![10; 9],
            rows: vec![1; 9],
            heights: vec![0; 9],
            structures: vec![3; 9],
            reach: vec![vec![true; 9]; 9],
            step: 0.0,
        };
        let mut g = Graph::new();
        let v = net.forward(&mut g, &set, &long);
        assert_eq!(g.value(v).rows, 1);
    }
}
