//! The planner's action space (§III Action).
//!
//! Two action families over the incomplete plan:
//!
//! * `Swap(T_l, T_r)` — exchange the leaf tables at 1-based positions `l < r`;
//!   there are `Is = n(n−1)/2` of them;
//! * `Override(O_i, Op_j)` — set join `O_i` to the `j`-th method; there are
//!   `Io = |Op|·(n−1)` of them.
//!
//! Actions are encoded as one contiguous integer range so one policy head
//! covers queries of any size: the space is laid out for the workload's
//! maximum relation count `max_n`, and the **validity mask** switches off
//! whatever a specific query/state does not admit:
//!
//! * swaps touching positions beyond the query's `n`,
//! * swaps that would disconnect the join prefix (cross products — the
//!   paper's "Swap(T1, T5) is considered an illegal action"),
//! * overrides that restate the current method (useless steps),
//! * after a `Swap`, everything except `Override` on the parent join of one
//!   of the swapped leaves (the paper's `LimitSpace` heuristic).
//!
//! The paper packs the same two families with a different (equivalent)
//! integer bijection; the layout here is lexicographic, which is easier to
//! verify — see the round-trip tests.

use foss_optimizer::{Icp, ALL_JOIN_METHODS};
use foss_query::Query;
use serde::{Deserialize, Serialize};

/// A decoded planner action (1-based labels, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Exchange leaf tables `T_l` and `T_r` (`l < r`).
    Swap {
        /// Lower position label.
        l: usize,
        /// Higher position label.
        r: usize,
    },
    /// Set join `O_i` to method `Op_j` (`j` is 1-based into
    /// [`ALL_JOIN_METHODS`]).
    Override {
        /// Join label (1-based, bottom-up).
        i: usize,
        /// Method index (1-based).
        j: usize,
    },
}

/// The global action space for a workload whose largest query joins
/// `max_n` relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionSpace {
    max_n: usize,
}

impl ActionSpace {
    /// Space sized for queries of up to `max_n` relations.
    pub fn new(max_n: usize) -> Self {
        assert!(max_n >= 2, "action space needs at least two relations");
        Self { max_n }
    }

    /// `Is` — number of swap actions.
    pub fn swap_count(&self) -> usize {
        self.max_n * (self.max_n - 1) / 2
    }

    /// `Io` — number of override actions.
    pub fn override_count(&self) -> usize {
        ALL_JOIN_METHODS.len() * (self.max_n - 1)
    }

    /// Total number of actions (`Is + Io`).
    pub fn len(&self) -> usize {
        self.swap_count() + self.override_count()
    }

    /// Action spaces are never empty (`max_n ≥ 2`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Decode a 0-based action index.
    pub fn decode(&self, a: usize) -> Action {
        assert!(a < self.len(), "action {a} out of range");
        let is = self.swap_count();
        if a < is {
            // Lexicographic pair enumeration: (1,2), (1,3), …, (1,n), (2,3)…
            let mut rem = a;
            let mut l = 1;
            loop {
                let pairs_with_l = self.max_n - l;
                if rem < pairs_with_l {
                    return Action::Swap { l, r: l + 1 + rem };
                }
                rem -= pairs_with_l;
                l += 1;
            }
        } else {
            let o = a - is;
            let m = ALL_JOIN_METHODS.len();
            Action::Override {
                i: o / m + 1,
                j: o % m + 1,
            }
        }
    }

    /// Encode an action back to its 0-based index (inverse of [`decode`]).
    ///
    /// [`decode`]: ActionSpace::decode
    pub fn encode(&self, action: Action) -> usize {
        match action {
            Action::Swap { l, r } => {
                assert!(l < r && r <= self.max_n, "bad swap ({l},{r})");
                // Offset of the block for `l`, then the position of `r`.
                let before: usize = (1..l).map(|x| self.max_n - x).sum();
                before + (r - l - 1)
            }
            Action::Override { i, j } => {
                let m = ALL_JOIN_METHODS.len();
                assert!(
                    i >= 1 && i < self.max_n && j >= 1 && j <= m,
                    "bad override ({i},{j})"
                );
                self.swap_count() + (i - 1) * m + (j - 1)
            }
        }
    }

    /// Apply a decoded action to an ICP in place.
    pub fn apply(&self, action: Action, icp: &mut Icp) -> foss_common::Result<()> {
        match action {
            Action::Swap { l, r } => icp.swap(l, r),
            Action::Override { i, j } => icp.override_method(i, j),
        }
    }

    /// Compute the validity mask for `query` in state `icp`.
    ///
    /// `last_swap` is `Some((l, r))` when the previous action in this episode
    /// was `Swap(T_l, T_r)` — the `LimitSpace` restriction then applies.
    pub fn mask(&self, query: &Query, icp: &Icp, last_swap: Option<(usize, usize)>) -> Vec<bool> {
        let n = icp.relation_count();
        let mut mask = vec![false; self.len()];

        if let Some((l, r)) = last_swap {
            // Only overrides of the parent joins of the swapped leaves.
            for leaf in [l, r] {
                let i = Icp::parent_join_of_leaf(leaf);
                if i <= n.saturating_sub(1) {
                    for j in 1..=ALL_JOIN_METHODS.len() {
                        if ALL_JOIN_METHODS[j - 1] != icp.methods[i - 1] {
                            mask[self.encode(Action::Override { i, j })] = true;
                        }
                    }
                }
            }
            return mask;
        }

        // Swap actions: stay within n, keep the join prefix connected.
        for l in 1..n {
            for r in (l + 1)..=n {
                let mut cand = icp.clone();
                cand.order.swap(l - 1, r - 1);
                if order_is_connected(query, &cand.order) {
                    mask[self.encode(Action::Swap { l, r })] = true;
                }
            }
        }
        // Override actions: any join, any *different* method.
        for i in 1..n {
            for j in 1..=ALL_JOIN_METHODS.len() {
                if ALL_JOIN_METHODS[j - 1] != icp.methods[i - 1] {
                    mask[self.encode(Action::Override { i, j })] = true;
                }
            }
        }
        mask
    }
}

/// True when the left-deep order never requires a cross product: every leaf
/// after the first shares at least one join edge with the prefix before it.
pub fn order_is_connected(query: &Query, order: &[usize]) -> bool {
    for k in 1..order.len() {
        if !query.edges_between_set(&order[..k], order[k]).is_empty() {
            continue;
        }
        return false;
    }
    true
}

impl foss_common::Codec for ActionSpace {
    fn encode(&self, w: &mut foss_common::ByteWriter) {
        w.put_usize(self.max_n);
    }
    fn decode(r: &mut foss_common::ByteReader<'_>) -> foss_common::Result<Self> {
        let max_n = r.get_usize()?;
        if max_n < 2 {
            return Err(foss_common::FossError::Serde(format!(
                "decoded action space invalid: max_n={max_n}"
            )));
        }
        Ok(Self { max_n })
    }
}

/// Extract `(l, r)` if the action was a swap (for `LimitSpace` tracking).
pub fn as_swap(action: Action) -> Option<(usize, usize)> {
    match action {
        Action::Swap { l, r } => Some((l, r)),
        Action::Override { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_catalog::{ColumnDef, Schema, TableDef};
    use foss_common::QueryId;
    use foss_optimizer::JoinMethod;
    use foss_query::QueryBuilder;

    /// Chain query a—b—c—d (edges only between neighbours).
    fn chain4() -> Query {
        let mut s = Schema::new();
        for name in ["a", "b", "c", "d"] {
            s.add_table(TableDef {
                name: name.into(),
                columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("fk")],
            })
            .unwrap();
        }
        let mut qb = QueryBuilder::new(QueryId::new(0), 1);
        let a = qb.relation(s.table_id("a").unwrap(), "a");
        let b = qb.relation(s.table_id("b").unwrap(), "b");
        let c = qb.relation(s.table_id("c").unwrap(), "c");
        let d = qb.relation(s.table_id("d").unwrap(), "d");
        qb.join(a, 0, b, 1).join(b, 0, c, 1).join(c, 0, d, 1);
        qb.build(&s).unwrap()
    }

    fn icp4() -> Icp {
        Icp::new(vec![0, 1, 2, 3], vec![JoinMethod::Hash; 3]).unwrap()
    }

    #[test]
    fn counts_match_paper_formulas() {
        let sp = ActionSpace::new(8);
        assert_eq!(sp.swap_count(), 8 * 7 / 2);
        assert_eq!(sp.override_count(), 3 * 7);
        assert_eq!(sp.len(), 28 + 21);
    }

    #[test]
    fn encode_decode_roundtrip_every_action() {
        let sp = ActionSpace::new(7);
        for a in 0..sp.len() {
            let action = sp.decode(a);
            assert_eq!(sp.encode(action), a, "roundtrip failed for {action:?}");
        }
    }

    #[test]
    fn decode_layout_is_lexicographic() {
        let sp = ActionSpace::new(4);
        assert_eq!(sp.decode(0), Action::Swap { l: 1, r: 2 });
        assert_eq!(sp.decode(1), Action::Swap { l: 1, r: 3 });
        assert_eq!(sp.decode(2), Action::Swap { l: 1, r: 4 });
        assert_eq!(sp.decode(3), Action::Swap { l: 2, r: 3 });
        assert_eq!(sp.decode(5), Action::Swap { l: 3, r: 4 });
        assert_eq!(sp.decode(6), Action::Override { i: 1, j: 1 });
        assert_eq!(sp.decode(8), Action::Override { i: 1, j: 3 });
        assert_eq!(sp.decode(9), Action::Override { i: 2, j: 1 });
    }

    #[test]
    fn mask_blocks_disconnecting_swaps() {
        let q = chain4();
        let sp = ActionSpace::new(4);
        let mask = sp.mask(&q, &icp4(), None);
        // Swapping T1 (a) and T4 (d): order d,b,c,a — d has no edge to b.
        assert!(!mask[sp.encode(Action::Swap { l: 1, r: 4 })]);
        // Swapping T1 and T2 (a, b): order b,a,c,d stays connected.
        assert!(mask[sp.encode(Action::Swap { l: 1, r: 2 })]);
        // Swapping T3 and T4 (c, d): order a,b,d,c — d joins prefix via c?
        // d's only edge is to c which is not yet joined → disconnected.
        assert!(!mask[sp.encode(Action::Swap { l: 3, r: 4 })]);
    }

    #[test]
    fn mask_blocks_same_method_overrides() {
        let q = chain4();
        let sp = ActionSpace::new(4);
        let mask = sp.mask(&q, &icp4(), None);
        // Current method everywhere is Hash (j = 1).
        for i in 1..=3 {
            assert!(!mask[sp.encode(Action::Override { i, j: 1 })]);
            assert!(mask[sp.encode(Action::Override { i, j: 2 })]);
            assert!(mask[sp.encode(Action::Override { i, j: 3 })]);
        }
    }

    #[test]
    fn limit_space_after_swap() {
        let q = chain4();
        let sp = ActionSpace::new(4);
        // Last action swapped T2 and T3: parents are O1 and O2.
        let mask = sp.mask(&q, &icp4(), Some((2, 3)));
        let legal: Vec<Action> = (0..sp.len())
            .filter(|&a| mask[a])
            .map(|a| sp.decode(a))
            .collect();
        assert!(!legal.is_empty());
        for action in &legal {
            match action {
                Action::Override { i, .. } => assert!(*i == 1 || *i == 2, "got {action:?}"),
                other => panic!("swap allowed under LimitSpace: {other:?}"),
            }
        }
        // Overrides on O3 are not allowed.
        assert!(!mask[sp.encode(Action::Override { i: 3, j: 2 })]);
    }

    #[test]
    fn mask_always_has_a_legal_action() {
        let q = chain4();
        let sp = ActionSpace::new(6); // larger than the query
        let mask = sp.mask(&q, &icp4(), None);
        assert!(mask.iter().any(|&m| m));
        // Everything referencing positions 5, 6 must be masked out.
        assert!(!mask[sp.encode(Action::Swap { l: 1, r: 6 })]);
        assert!(!mask[sp.encode(Action::Override { i: 5, j: 2 })]);
    }

    #[test]
    fn apply_mutates_icp() {
        let sp = ActionSpace::new(4);
        let mut icp = icp4();
        sp.apply(Action::Swap { l: 1, r: 2 }, &mut icp).unwrap();
        assert_eq!(icp.order, vec![1, 0, 2, 3]);
        sp.apply(Action::Override { i: 2, j: 3 }, &mut icp).unwrap();
        assert_eq!(icp.methods[1], JoinMethod::NestLoop);
    }

    #[test]
    fn order_connectivity_detects_cross_products() {
        let q = chain4();
        assert!(order_is_connected(&q, &[0, 1, 2, 3]));
        assert!(order_is_connected(&q, &[1, 0, 2, 3]));
        assert!(order_is_connected(&q, &[1, 2, 3, 0]));
        assert!(!order_is_connected(&q, &[0, 2, 1, 3]));
        assert!(!order_is_connected(&q, &[0, 3, 1, 2]));
    }
}
