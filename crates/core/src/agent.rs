//! The planner's agent (§III Agent): transformer state network `ϕ` plus a
//! fully-connected action selector `π` and a value head, trained end-to-end
//! with PPO.

use foss_nn::{Graph, Linear, ParamSet, Var};
use foss_rl::{sample_masked, PolicyValueNet, Ppo, PpoConfig, PpoStats, RolloutBatch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::config::FossConfig;
use crate::encoding::EncodedPlan;
use crate::state_net::StateNetwork;

/// The parameterised model: `ϕ` + policy MLP + value MLP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgentModel {
    state_net: StateNetwork,
    policy_hidden: Linear,
    policy_out: Linear,
    value_hidden: Linear,
    value_out: Linear,
    actions: usize,
}

impl AgentModel {
    fn new(
        set: &mut ParamSet,
        table_vocab: usize,
        actions: usize,
        cfg: &FossConfig,
        rng: &mut StdRng,
    ) -> Self {
        let state_net = StateNetwork::new(
            set,
            table_vocab,
            cfg.d_model,
            cfg.d_state,
            cfg.heads,
            cfg.blocks,
            rng,
        );
        Self {
            state_net,
            policy_hidden: Linear::new(set, cfg.d_state, cfg.d_state, rng),
            policy_out: Linear::new(set, cfg.d_state, actions, rng),
            value_hidden: Linear::new(set, cfg.d_state, cfg.d_state, rng),
            value_out: Linear::new(set, cfg.d_state, 1, rng),
            actions,
        }
    }
}

impl PolicyValueNet<EncodedPlan> for AgentModel {
    fn forward(&self, g: &mut Graph, set: &ParamSet, states: &[&EncodedPlan]) -> (Var, Var) {
        let sv = self.state_net.forward_batch(g, set, states);
        let ph = self.policy_hidden.forward(g, set, sv);
        let ph = g.relu(ph);
        let logits = self.policy_out.forward(g, set, ph);
        let vh = self.value_hidden.forward(g, set, sv);
        let vh = g.relu(vh);
        let values = self.value_out.forward(g, set, vh);
        (logits, values)
    }

    fn action_count(&self) -> usize {
        self.actions
    }
}

/// One planner agent: model, parameters, PPO trainer and its own RNG.
///
/// Multi-agent FOSS (§VI-C5) instantiates several of these "with different
/// strategies (e.g., different discount factors and learning rates)" — see
/// [`PlannerAgent::with_strategy`].
pub struct PlannerAgent {
    /// The network.
    pub model: AgentModel,
    /// Its parameters.
    pub set: ParamSet,
    ppo: Ppo,
    rng: StdRng,
}

impl PlannerAgent {
    /// Allocate an agent for `actions` possible actions.
    pub fn new(table_vocab: usize, actions: usize, cfg: &FossConfig, seed: u64) -> Self {
        Self::with_strategy(table_vocab, actions, cfg, seed, 1.0, cfg.rl_gamma)
    }

    /// Allocate with a scaled learning rate and an explicit RL discount —
    /// the per-agent strategy diversification of the multi-agent mode.
    pub fn with_strategy(
        table_vocab: usize,
        actions: usize,
        cfg: &FossConfig,
        seed: u64,
        lr_scale: f32,
        rl_gamma: f32,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = ParamSet::new();
        let model = AgentModel::new(&mut set, table_vocab, actions, cfg, &mut rng);
        let ppo_cfg = PpoConfig {
            gamma: rl_gamma,
            minibatch: 32,
            ..PpoConfig::default()
        };
        Self {
            model,
            set,
            ppo: Ppo::new(ppo_cfg, cfg.agent_lr * lr_scale),
            rng,
        }
    }

    /// PPO discount γ in effect.
    pub fn gamma(&self) -> f32 {
        self.ppo.cfg.gamma
    }

    /// GAE λ in effect.
    pub fn lambda(&self) -> f32 {
        self.ppo.cfg.lam
    }

    /// Evaluate one state: returns `(masked logits, value)`.
    pub fn evaluate(&self, state: &EncodedPlan) -> (Vec<f32>, f32) {
        let mut g = Graph::new();
        let (logits, values) = self.model.forward(&mut g, &self.set, &[state]);
        (g.value(logits).row(0).to_vec(), g.value(values).get(0, 0))
    }

    /// Sample an action under `mask`; returns `(action, logp, value)`.
    pub fn act(&mut self, state: &EncodedPlan, mask: &[bool]) -> (usize, f32, f32) {
        let (logits, value) = self.evaluate(state);
        let (a, logp, _) = sample_masked(&logits, mask, &mut self.rng);
        (a, logp, value)
    }

    /// Greedy action under `mask` (inference).
    pub fn act_greedy(&self, state: &EncodedPlan, mask: &[bool]) -> usize {
        let (logits, _) = self.evaluate(state);
        logits
            .iter()
            .enumerate()
            .filter(|(i, _)| mask[*i])
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("mask admits no action")
    }

    /// Run one PPO update over a finished rollout batch.
    pub fn update(&mut self, batch: &RolloutBatch<EncodedPlan>) -> PpoStats {
        self.ppo
            .update(&self.model, &mut self.set, batch, &mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(tag: usize) -> EncodedPlan {
        EncodedPlan {
            ops: vec![tag % 6, 0],
            tables: vec![0, 1],
            sels: vec![10, 0],
            rows: vec![2, 3],
            heights: vec![1, 0],
            structures: vec![3, 1],
            reach: vec![vec![true, true], vec![true, true]],
            step: 0.0,
        }
    }

    fn agent(actions: usize) -> PlannerAgent {
        PlannerAgent::new(3, actions, &FossConfig::tiny(), 9)
    }

    #[test]
    fn act_respects_mask() {
        let mut a = agent(5);
        let mask = vec![false, true, false, false, true];
        for _ in 0..50 {
            let (act, logp, _v) = a.act(&plan(0), &mask);
            assert!(mask[act]);
            assert!(logp <= 0.0);
        }
    }

    #[test]
    fn greedy_is_deterministic_and_masked() {
        let a = agent(4);
        let mask = vec![true, false, true, false];
        let g1 = a.act_greedy(&plan(1), &mask);
        let g2 = a.act_greedy(&plan(1), &mask);
        assert_eq!(g1, g2);
        assert!(mask[g1]);
    }

    #[test]
    fn strategy_variants_differ() {
        let a = PlannerAgent::with_strategy(3, 4, &FossConfig::tiny(), 1, 1.0, 0.99);
        let b = PlannerAgent::with_strategy(3, 4, &FossConfig::tiny(), 2, 0.5, 0.9);
        assert_ne!(a.gamma(), b.gamma());
        // Different seeds → different initial policies.
        let (la, _) = a.evaluate(&plan(0));
        let (lb, _) = b.evaluate(&plan(0));
        assert_ne!(la, lb);
    }

    #[test]
    fn update_changes_policy() {
        use foss_rl::{RolloutBuffer, Transition};
        let mut a = agent(3);
        let mask = vec![true, true, true];
        let before = a.evaluate(&plan(0)).0;
        let mut buf = RolloutBuffer::new();
        for _ in 0..8 {
            let (act, logp, v) = a.act(&plan(0), &mask);
            buf.push(Transition {
                state: plan(0),
                mask: mask.clone(),
                action: act,
                reward: if act == 2 { 1.0 } else { -1.0 },
                done: true,
                value: v,
                logp,
            });
        }
        let batch = buf.finish(a.gamma(), a.lambda());
        let stats = a.update(&batch);
        assert!(stats.epochs_run >= 1);
        let after = a.evaluate(&plan(0)).0;
        assert_ne!(before, after);
    }
}
