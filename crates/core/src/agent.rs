//! The planner's agent (§III Agent): transformer state network `ϕ` plus a
//! fully-connected action selector `π` and a value head, trained end-to-end
//! with PPO.

use foss_common::{ByteReader, ByteWriter, Codec};
use foss_nn::{Graph, Linear, ParamSet, Var};
use foss_rl::{sample_masked, PolicyValueNet, Ppo, PpoConfig, PpoStats, RolloutBatch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::config::FossConfig;
use crate::encoding::EncodedPlan;
use crate::state_net::StateNetwork;

/// The parameterised model: `ϕ` + policy MLP + value MLP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgentModel {
    state_net: StateNetwork,
    policy_hidden: Linear,
    policy_out: Linear,
    value_hidden: Linear,
    value_out: Linear,
    actions: usize,
}

impl AgentModel {
    fn new(
        set: &mut ParamSet,
        table_vocab: usize,
        actions: usize,
        cfg: &FossConfig,
        rng: &mut StdRng,
    ) -> Self {
        let state_net = StateNetwork::new(
            set,
            table_vocab,
            cfg.d_model,
            cfg.d_state,
            cfg.heads,
            cfg.blocks,
            rng,
        );
        Self {
            state_net,
            policy_hidden: Linear::new(set, cfg.d_state, cfg.d_state, rng),
            policy_out: Linear::new(set, cfg.d_state, actions, rng),
            value_hidden: Linear::new(set, cfg.d_state, cfg.d_state, rng),
            value_out: Linear::new(set, cfg.d_state, 1, rng),
            actions,
        }
    }
}

impl Codec for AgentModel {
    fn encode(&self, w: &mut ByteWriter) {
        self.state_net.encode(w);
        self.policy_hidden.encode(w);
        self.policy_out.encode(w);
        self.value_hidden.encode(w);
        self.value_out.encode(w);
        w.put_usize(self.actions);
    }
    fn decode(r: &mut ByteReader<'_>) -> foss_common::Result<Self> {
        Ok(Self {
            state_net: StateNetwork::decode(r)?,
            policy_hidden: Linear::decode(r)?,
            policy_out: Linear::decode(r)?,
            value_hidden: Linear::decode(r)?,
            value_out: Linear::decode(r)?,
            actions: r.get_usize()?,
        })
    }
}

impl PolicyValueNet<EncodedPlan> for AgentModel {
    fn forward(&self, g: &mut Graph, set: &ParamSet, states: &[&EncodedPlan]) -> (Var, Var) {
        let sv = self.state_net.forward_batch(g, set, states);
        let ph = self.policy_hidden.forward(g, set, sv);
        let ph = g.relu(ph);
        let logits = self.policy_out.forward(g, set, ph);
        let vh = self.value_hidden.forward(g, set, sv);
        let vh = g.relu(vh);
        let values = self.value_out.forward(g, set, vh);
        (logits, values)
    }

    fn action_count(&self) -> usize {
        self.actions
    }
}

/// Evaluate one state against a model + parameter set: `(logits, value)`.
///
/// Shared by the trainable [`PlannerAgent`] and the serving
/// [`FrozenPolicy`] so both paths run the exact same tape.
fn eval_model(model: &AgentModel, set: &ParamSet, state: &EncodedPlan) -> (Vec<f32>, f32) {
    let mut g = Graph::new();
    let (logits, values) = model.forward(&mut g, set, &[state]);
    (g.value(logits).row(0).to_vec(), g.value(values).get(0, 0))
}

/// Argmax action under `mask` for a model + parameter set.
fn greedy_action(model: &AgentModel, set: &ParamSet, state: &EncodedPlan, mask: &[bool]) -> usize {
    let (logits, _) = eval_model(model, set, state);
    logits
        .iter()
        .enumerate()
        .filter(|(i, _)| mask[*i])
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("mask admits no action")
}

/// Read-only greedy action selection — the part of a planner a serving
/// snapshot needs. Implemented by the live [`PlannerAgent`] (training-side
/// inference) and by [`FrozenPolicy`] (published snapshots), so the episode
/// loop can run identically over either.
pub trait PlanPolicy {
    /// Greedy action under `mask` (deterministic for fixed weights).
    fn act_greedy(&self, state: &EncodedPlan, mask: &[bool]) -> usize;
}

/// An immutable copy of an agent's policy weights, detached from its PPO
/// trainer and RNG. `Clone` + `Send` + `Sync`: many threads can plan over
/// one frozen policy concurrently.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrozenPolicy {
    model: AgentModel,
    set: ParamSet,
}

impl FrozenPolicy {
    /// Evaluate one state: returns `(masked logits, value)` — bit-identical
    /// to the live agent the policy was frozen from.
    pub fn evaluate(&self, state: &EncodedPlan) -> (Vec<f32>, f32) {
        eval_model(&self.model, &self.set, state)
    }
}

impl Codec for FrozenPolicy {
    fn encode(&self, w: &mut ByteWriter) {
        self.model.encode(w);
        self.set.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> foss_common::Result<Self> {
        Ok(Self {
            model: AgentModel::decode(r)?,
            set: ParamSet::decode(r)?,
        })
    }
}

impl PlanPolicy for FrozenPolicy {
    fn act_greedy(&self, state: &EncodedPlan, mask: &[bool]) -> usize {
        greedy_action(&self.model, &self.set, state, mask)
    }
}

/// One planner agent: model, parameters, PPO trainer and its own RNG.
///
/// Multi-agent FOSS (§VI-C5) instantiates several of these "with different
/// strategies (e.g., different discount factors and learning rates)" — see
/// [`PlannerAgent::with_strategy`].
pub struct PlannerAgent {
    /// The network.
    pub model: AgentModel,
    /// Its parameters.
    pub set: ParamSet,
    ppo: Ppo,
    rng: StdRng,
}

impl PlannerAgent {
    /// Allocate an agent for `actions` possible actions.
    pub fn new(table_vocab: usize, actions: usize, cfg: &FossConfig, seed: u64) -> Self {
        Self::with_strategy(table_vocab, actions, cfg, seed, 1.0, cfg.rl_gamma)
    }

    /// Allocate with a scaled learning rate and an explicit RL discount —
    /// the per-agent strategy diversification of the multi-agent mode.
    pub fn with_strategy(
        table_vocab: usize,
        actions: usize,
        cfg: &FossConfig,
        seed: u64,
        lr_scale: f32,
        rl_gamma: f32,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = ParamSet::new();
        let model = AgentModel::new(&mut set, table_vocab, actions, cfg, &mut rng);
        let ppo_cfg = PpoConfig {
            gamma: rl_gamma,
            minibatch: 32,
            ..PpoConfig::default()
        };
        Self {
            model,
            set,
            ppo: Ppo::new(ppo_cfg, cfg.agent_lr * lr_scale),
            rng,
        }
    }

    /// PPO discount γ in effect.
    pub fn gamma(&self) -> f32 {
        self.ppo.cfg.gamma
    }

    /// GAE λ in effect.
    pub fn lambda(&self) -> f32 {
        self.ppo.cfg.lam
    }

    /// Evaluate one state: returns `(masked logits, value)`.
    pub fn evaluate(&self, state: &EncodedPlan) -> (Vec<f32>, f32) {
        eval_model(&self.model, &self.set, state)
    }

    /// Sample an action under `mask`; returns `(action, logp, value)`.
    pub fn act(&mut self, state: &EncodedPlan, mask: &[bool]) -> (usize, f32, f32) {
        let (logits, value) = self.evaluate(state);
        let (a, logp, _) = sample_masked(&logits, mask, &mut self.rng);
        (a, logp, value)
    }

    /// Greedy action under `mask` (inference).
    pub fn act_greedy(&self, state: &EncodedPlan, mask: &[bool]) -> usize {
        greedy_action(&self.model, &self.set, state, mask)
    }

    /// Copy the current policy weights into an immutable, shareable
    /// [`FrozenPolicy`] (the agent keeps training; the copy never changes).
    pub fn freeze(&self) -> FrozenPolicy {
        FrozenPolicy {
            model: self.model.clone(),
            set: self.set.clone(),
        }
    }

    /// Run one PPO update over a finished rollout batch.
    pub fn update(&mut self, batch: &RolloutBatch<EncodedPlan>) -> PpoStats {
        self.ppo
            .update(&self.model, &mut self.set, batch, &mut self.rng)
    }
}

impl PlanPolicy for PlannerAgent {
    fn act_greedy(&self, state: &EncodedPlan, mask: &[bool]) -> usize {
        PlannerAgent::act_greedy(self, state, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(tag: usize) -> EncodedPlan {
        EncodedPlan {
            ops: vec![tag % 6, 0],
            tables: vec![0, 1],
            sels: vec![10, 0],
            rows: vec![2, 3],
            heights: vec![1, 0],
            structures: vec![3, 1],
            reach: vec![vec![true, true], vec![true, true]],
            step: 0.0,
        }
    }

    fn agent(actions: usize) -> PlannerAgent {
        PlannerAgent::new(3, actions, &FossConfig::tiny(), 9)
    }

    #[test]
    fn act_respects_mask() {
        let mut a = agent(5);
        let mask = vec![false, true, false, false, true];
        for _ in 0..50 {
            let (act, logp, _v) = a.act(&plan(0), &mask);
            assert!(mask[act]);
            assert!(logp <= 0.0);
        }
    }

    #[test]
    fn greedy_is_deterministic_and_masked() {
        let a = agent(4);
        let mask = vec![true, false, true, false];
        let g1 = a.act_greedy(&plan(1), &mask);
        let g2 = a.act_greedy(&plan(1), &mask);
        assert_eq!(g1, g2);
        assert!(mask[g1]);
    }

    #[test]
    fn strategy_variants_differ() {
        let a = PlannerAgent::with_strategy(3, 4, &FossConfig::tiny(), 1, 1.0, 0.99);
        let b = PlannerAgent::with_strategy(3, 4, &FossConfig::tiny(), 2, 0.5, 0.9);
        assert_ne!(a.gamma(), b.gamma());
        // Different seeds → different initial policies.
        let (la, _) = a.evaluate(&plan(0));
        let (lb, _) = b.evaluate(&plan(0));
        assert_ne!(la, lb);
    }

    #[test]
    fn frozen_policy_matches_live_agent() {
        let a = agent(4);
        let frozen = a.freeze();
        let mask = vec![true, false, true, true];
        for tag in 0..6 {
            assert_eq!(frozen.evaluate(&plan(tag)), a.evaluate(&plan(tag)));
            assert_eq!(
                PlanPolicy::act_greedy(&frozen, &plan(tag), &mask),
                a.act_greedy(&plan(tag), &mask)
            );
        }
    }

    #[test]
    fn frozen_policy_is_detached_from_training() {
        use foss_rl::{RolloutBuffer, Transition};
        let mut a = agent(3);
        let frozen = a.freeze();
        let before = frozen.evaluate(&plan(0)).0;
        let mask = vec![true, true, true];
        let mut buf = RolloutBuffer::new();
        for _ in 0..8 {
            let (act, logp, v) = a.act(&plan(0), &mask);
            buf.push(Transition {
                state: plan(0),
                mask: mask.clone(),
                action: act,
                reward: 1.0,
                done: true,
                value: v,
                logp,
            });
        }
        let batch = buf.finish(a.gamma(), a.lambda());
        a.update(&batch);
        // The live agent moved; the frozen copy did not.
        assert_ne!(a.evaluate(&plan(0)).0, before);
        assert_eq!(frozen.evaluate(&plan(0)).0, before);
    }

    #[test]
    fn update_changes_policy() {
        use foss_rl::{RolloutBuffer, Transition};
        let mut a = agent(3);
        let mask = vec![true, true, true];
        let before = a.evaluate(&plan(0)).0;
        let mut buf = RolloutBuffer::new();
        for _ in 0..8 {
            let (act, logp, v) = a.act(&plan(0), &mask);
            buf.push(Transition {
                state: plan(0),
                mask: mask.clone(),
                action: act,
                reward: if act == 2 { 1.0 } else { -1.0 },
                done: true,
                value: v,
                logp,
            });
        }
        let batch = buf.finish(a.gamma(), a.lambda());
        let stats = a.update(&batch);
        assert!(stats.epochs_run >= 1);
        let after = a.evaluate(&plan(0)).0;
        assert_ne!(before, after);
    }
}
