//! FOSS hyperparameters, defaulting to the paper's reported values.

use serde::{Deserialize, Serialize};

/// Everything tunable about FOSS. Field defaults follow §III–§VI of the
/// paper (`maxsteps = 3`, `η = 12`, `γ = 2`, advantage split points
/// `{0.05, 0.50}`, dynamic timeout `1.5×`, 900 episodes per agent update).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FossConfig {
    /// Maximum optimisation steps per episode (`maxsteps`).
    pub max_steps: usize,
    /// Weight of the episode bounty relative to the step bounty (`η`).
    pub eta: f64,
    /// Penalty coefficient (`γ` in Eq. 3). Set 0 to disable (Table II
    /// "Off-Penalty").
    pub penalty_gamma: f64,
    /// Ordered advantage split points (`{d_i}`, §IV-B).
    pub adv_points: Vec<f64>,
    /// Dynamic timeout factor over the original plan's latency (§V-B).
    pub timeout_factor: f64,
    /// Simulated episodes per agent update (900 in the paper; scale down for
    /// quick experiments).
    pub episodes_per_update: usize,
    /// Whether the simulated environment is used at all (Table II
    /// "Off-Simulated": agent learns from real rewards only).
    pub use_simulated_env: bool,
    /// Whether promising plans are validated in the real environment
    /// (Table II "Off-Validation").
    pub validate_promising: bool,
    /// How many top-rated simulated plans per update round to validate.
    pub promising_per_update: usize,
    /// Random queries sampled per update round for extra AAM data.
    pub random_validation_per_update: usize,
    /// Number of agents (Table II "2-Agents"). Each gets its own seed and a
    /// slightly different learning rate / discount.
    pub num_agents: usize,
    /// AAM supervised epochs per retraining round.
    pub aam_epochs: usize,
    /// AAM minibatch size.
    pub aam_batch: usize,
    /// AAM learning rate.
    pub aam_lr: f32,
    /// Positive-class focal decay `γ+` (must be < `γ−`).
    pub focal_gamma_pos: f32,
    /// Negative-class focal decay `γ−`.
    pub focal_gamma_neg: f32,
    /// Label-smoothing ε (`K = 3` classes).
    pub label_smoothing: f32,
    /// Transformer width of the state networks.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Attention blocks.
    pub blocks: usize,
    /// Width of the final state representation (`statevec`).
    pub d_state: usize,
    /// PPO learning rate for the agent.
    pub agent_lr: f32,
    /// PPO discount γ (RL discount, not the penalty coefficient).
    pub rl_gamma: f32,
    /// Experiment seed; all stochastic components derive from it.
    pub seed: u64,
}

impl Default for FossConfig {
    fn default() -> Self {
        Self {
            max_steps: 3,
            eta: 12.0,
            penalty_gamma: 2.0,
            adv_points: vec![0.05, 0.50],
            timeout_factor: 1.5,
            episodes_per_update: 900,
            use_simulated_env: true,
            validate_promising: true,
            promising_per_update: 24,
            random_validation_per_update: 8,
            num_agents: 1,
            aam_epochs: 4,
            aam_batch: 32,
            aam_lr: 1e-3,
            focal_gamma_pos: 1.0,
            focal_gamma_neg: 4.0,
            label_smoothing: 0.1,
            d_model: 64,
            heads: 4,
            blocks: 2,
            d_state: 64,
            agent_lr: 3e-4,
            rl_gamma: 0.99,
            seed: 42,
        }
    }
}

impl FossConfig {
    /// A configuration scaled down for unit tests and CI: tiny model, few
    /// episodes, same algorithms.
    pub fn tiny() -> Self {
        Self {
            episodes_per_update: 24,
            promising_per_update: 6,
            random_validation_per_update: 3,
            aam_epochs: 2,
            d_model: 32,
            heads: 2,
            blocks: 1,
            d_state: 32,
            ..Self::default()
        }
    }

    /// Number of advantage classes `K = |points| + 1`.
    pub fn num_classes(&self) -> usize {
        self.adv_points.len() + 1
    }
}

impl foss_common::Codec for FossConfig {
    fn encode(&self, w: &mut foss_common::ByteWriter) {
        w.put_usize(self.max_steps);
        w.put_f64(self.eta);
        w.put_f64(self.penalty_gamma);
        self.adv_points.encode(w);
        w.put_f64(self.timeout_factor);
        w.put_usize(self.episodes_per_update);
        w.put_bool(self.use_simulated_env);
        w.put_bool(self.validate_promising);
        w.put_usize(self.promising_per_update);
        w.put_usize(self.random_validation_per_update);
        w.put_usize(self.num_agents);
        w.put_usize(self.aam_epochs);
        w.put_usize(self.aam_batch);
        w.put_f32(self.aam_lr);
        w.put_f32(self.focal_gamma_pos);
        w.put_f32(self.focal_gamma_neg);
        w.put_f32(self.label_smoothing);
        w.put_usize(self.d_model);
        w.put_usize(self.heads);
        w.put_usize(self.blocks);
        w.put_usize(self.d_state);
        w.put_f32(self.agent_lr);
        w.put_f32(self.rl_gamma);
        w.put_u64(self.seed);
    }
    fn decode(r: &mut foss_common::ByteReader<'_>) -> foss_common::Result<Self> {
        Ok(Self {
            max_steps: r.get_usize()?,
            eta: r.get_f64()?,
            penalty_gamma: r.get_f64()?,
            adv_points: Vec::decode(r)?,
            timeout_factor: r.get_f64()?,
            episodes_per_update: r.get_usize()?,
            use_simulated_env: r.get_bool()?,
            validate_promising: r.get_bool()?,
            promising_per_update: r.get_usize()?,
            random_validation_per_update: r.get_usize()?,
            num_agents: r.get_usize()?,
            aam_epochs: r.get_usize()?,
            aam_batch: r.get_usize()?,
            aam_lr: r.get_f32()?,
            focal_gamma_pos: r.get_f32()?,
            focal_gamma_neg: r.get_f32()?,
            label_smoothing: r.get_f32()?,
            d_model: r.get_usize()?,
            heads: r.get_usize()?,
            blocks: r.get_usize()?,
            d_state: r.get_usize()?,
            agent_lr: r.get_f32()?,
            rl_gamma: r.get_f32()?,
            seed: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = FossConfig::default();
        assert_eq!(c.max_steps, 3);
        assert_eq!(c.eta, 12.0);
        assert_eq!(c.penalty_gamma, 2.0);
        assert_eq!(c.adv_points, vec![0.05, 0.50]);
        assert_eq!(c.timeout_factor, 1.5);
        assert_eq!(c.episodes_per_update, 900);
        assert_eq!(c.num_classes(), 3);
        assert!(c.focal_gamma_pos < c.focal_gamma_neg);
        assert_eq!(c.label_smoothing, 0.1);
    }

    #[test]
    fn tiny_is_still_three_class() {
        assert_eq!(FossConfig::tiny().num_classes(), 3);
    }
}
