//! The asymmetric advantage model (§IV-B, §IV-C).
//!
//! `θadv(CP_l, CP_r) → FC2( FC1(ϕ(State(l)) ⊕ pos_left) −
//! FC1(ϕ(State(r)) ⊕ pos_right) )`, mapping a plan pair to `K = 3` advantage
//! scores. The learned left/right position embeddings make the model
//! *asymmetric*: swapping the pair is not guaranteed to negate the output,
//! which matters because the advantage definition itself is anchored on the
//! left plan.
//!
//! Training uses the asymmetric focal loss with label smoothing: positive
//! (target) classes decay with `γ+`, negative classes with `γ− > γ+`, so the
//! skew toward score-0 samples (most mutations make plans worse) does not
//! drown out the rare score-2 "much better plan" examples.

use foss_nn::{Adam, Embedding, Graph, Linear, Matrix, ParamSet, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use crate::config::FossConfig;
use crate::encoding::EncodedPlan;
use crate::state_net::StateNetwork;

/// A labelled training pair: `(left, right, Adv(left, right))`.
pub type AamSample = (EncodedPlan, EncodedPlan, usize);

/// The AAM: its own state network, position embeddings and difference head.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdvantageModel {
    set: ParamSet,
    state_net: StateNetwork,
    pos_emb: Embedding,
    fc1: Linear,
    fc2: Linear,
    adam: Adam,
    gamma_pos: f32,
    gamma_neg: f32,
    smoothing: f32,
    k: usize,
    batch: usize,
}

impl AdvantageModel {
    /// Allocate a fresh model for a schema with `table_vocab` table ids.
    pub fn new(table_vocab: usize, cfg: &FossConfig, rng: &mut StdRng) -> Self {
        let mut set = ParamSet::new();
        let state_net = StateNetwork::new(
            &mut set,
            table_vocab,
            cfg.d_model,
            cfg.d_state,
            cfg.heads,
            cfg.blocks,
            rng,
        );
        let d_pos = 8;
        let pos_emb = Embedding::new(&mut set, 2, d_pos, rng);
        let fc1 = Linear::new(&mut set, cfg.d_state + d_pos, cfg.d_state, rng);
        let fc2 = Linear::new(&mut set, cfg.d_state, cfg.num_classes(), rng);
        Self {
            set,
            state_net,
            pos_emb,
            fc1,
            fc2,
            adam: Adam::new(cfg.aam_lr),
            gamma_pos: cfg.focal_gamma_pos,
            gamma_neg: cfg.focal_gamma_neg,
            smoothing: cfg.label_smoothing,
            k: cfg.num_classes(),
            batch: cfg.aam_batch,
        }
    }

    /// Number of advantage classes.
    pub fn num_classes(&self) -> usize {
        self.k
    }

    /// Record the batched forward pass; returns `B×K` logits.
    fn forward_pairs(&self, g: &mut Graph, pairs: &[(&EncodedPlan, &EncodedPlan)]) -> Var {
        let b = pairs.len();
        let lefts: Vec<&EncodedPlan> = pairs.iter().map(|p| p.0).collect();
        let rights: Vec<&EncodedPlan> = pairs.iter().map(|p| p.1).collect();
        let sl = self.state_net.forward_batch(g, &self.set, &lefts);
        let sr = self.state_net.forward_batch(g, &self.set, &rights);
        let pos_l = self.pos_emb.forward(g, &self.set, &vec![0usize; b]);
        let pos_r = self.pos_emb.forward(g, &self.set, &vec![1usize; b]);
        let hl_in = g.concat_cols(&[sl, pos_l]);
        let hr_in = g.concat_cols(&[sr, pos_r]);
        let hl = self.fc1.forward(g, &self.set, hl_in);
        let hl = g.relu(hl);
        let hr = self.fc1.forward(g, &self.set, hr_in);
        let hr = g.relu(hr);
        let diff = g.sub(hl, hr);
        self.fc2.forward(g, &self.set, diff)
    }

    /// Predict the discrete advantage score of `right` over `left`.
    pub fn predict(&self, left: &EncodedPlan, right: &EncodedPlan) -> usize {
        let mut g = Graph::new();
        let logits = self.forward_pairs(&mut g, &[(left, right)]);
        let row = g.value(logits).row(0).to_vec();
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Predict scores for a batch of pairs at once.
    pub fn predict_batch(&self, pairs: &[(&EncodedPlan, &EncodedPlan)]) -> Vec<usize> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::new();
        let logits = self.forward_pairs(&mut g, pairs);
        let m = g.value(logits);
        (0..m.rows)
            .map(|r| {
                m.row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// The asymmetric focal loss with label smoothing over one minibatch.
    fn loss(&self, g: &mut Graph, logits: Var, targets: &[usize]) -> Var {
        let b = targets.len();
        let k = self.k;
        let eps = self.smoothing;
        let mut h_pos = Matrix::zeros(b, k);
        let mut h_neg = Matrix::zeros(b, k);
        for (r, &y) in targets.iter().enumerate() {
            for c in 0..k {
                if c == y {
                    h_pos.set(r, c, 1.0 - eps);
                } else {
                    h_neg.set(r, c, eps / (k as f32 - 1.0));
                }
            }
        }
        let p = g.softmax_rows(logits);
        let lp = g.log_softmax_rows(logits);
        let neg_lp = g.scale(lp, -1.0);
        // Positive classes: decay (1 − p)^γ+.
        let ones = g.input(Matrix::full(b, k, 1.0));
        let om_p = g.sub(ones, p);
        let decay_pos = g.pow_const(om_p, self.gamma_pos);
        let wpos = g.input(h_pos);
        let tp0 = g.mul(decay_pos, neg_lp);
        let term_pos = g.mul(tp0, wpos);
        // Negative classes: p̂ = 1 − p, so the decay is p^γ−.
        let decay_neg = g.pow_const(p, self.gamma_neg);
        let wneg = g.input(h_neg);
        let tn0 = g.mul(decay_neg, neg_lp);
        let term_neg = g.mul(tn0, wneg);
        let total = g.add(term_pos, term_neg);
        let s = g.sum_all(total);
        g.scale(s, 1.0 / b as f32)
    }

    /// One supervised epoch over `samples`; returns the mean minibatch loss.
    pub fn train_epoch(&mut self, samples: &[AamSample], rng: &mut StdRng) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut order: Vec<usize> = (0..samples.len()).collect();
        order.shuffle(rng);
        let mut total = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(self.batch.max(1)) {
            let pairs: Vec<(&EncodedPlan, &EncodedPlan)> =
                chunk.iter().map(|&i| (&samples[i].0, &samples[i].1)).collect();
            let targets: Vec<usize> = chunk.iter().map(|&i| samples[i].2).collect();
            let mut g = Graph::new();
            let logits = self.forward_pairs(&mut g, &pairs);
            let loss = self.loss(&mut g, logits, &targets);
            total += g.value(loss).get(0, 0);
            batches += 1;
            self.set.zero_grad();
            g.backward(loss, &mut self.set);
            let norm = self.set.grad_norm();
            if norm > 5.0 {
                self.set.scale_grads(5.0 / norm);
            }
            self.adam.step(&mut self.set);
        }
        total / batches as f32
    }

    /// Classification accuracy on `samples`.
    pub fn accuracy(&self, samples: &[AamSample]) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let pairs: Vec<(&EncodedPlan, &EncodedPlan)> =
            samples.iter().map(|s| (&s.0, &s.1)).collect();
        let preds = self.predict_batch(&pairs);
        let hits = preds
            .iter()
            .zip(samples)
            .filter(|(p, s)| **p == s.2)
            .count();
        hits as f32 / samples.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Synthetic plans whose first op code decides the true label, so the
    /// model has a learnable signal.
    fn plan(tag: usize) -> EncodedPlan {
        EncodedPlan {
            ops: vec![tag % 6, 0, 1],
            tables: vec![0, 1, 2],
            sels: vec![10, tag % 10, 0],
            rows: vec![tag % 20, 3, 4],
            heights: vec![1, 0, 0],
            structures: vec![3, 0, 1],
            reach: vec![
                vec![true, true, true],
                vec![true, true, false],
                vec![true, false, true],
            ],
            step: 0.0,
        }
    }

    fn model() -> AdvantageModel {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = FossConfig::tiny();
        AdvantageModel::new(4, &cfg, &mut rng)
    }

    #[test]
    fn predict_returns_valid_class() {
        let m = model();
        let s = m.predict(&plan(0), &plan(1));
        assert!(s < 3);
        // Batch agrees with single prediction.
        let b = m.predict_batch(&[(&plan(0), &plan(1))]);
        assert_eq!(b[0], s);
    }

    #[test]
    fn asymmetry_left_right_not_forced_symmetric() {
        // The architecture must at least be *capable* of asymmetric outputs:
        // raw logits for (a,b) and (b,a) differ for a random init.
        let m = model();
        let a = plan(0);
        let b = plan(5);
        let mut g1 = Graph::new();
        let l1 = m.forward_pairs(&mut g1, &[(&a, &b)]);
        let mut g2 = Graph::new();
        let l2 = m.forward_pairs(&mut g2, &[(&b, &a)]);
        assert_ne!(g1.value(l1).data, g2.value(l2).data);
    }

    #[test]
    fn learns_a_separable_labelling() {
        // Label = 2 when right plan has op tag 5, else 0. The model should
        // fit this quickly.
        let mut m = model();
        let mut rng = StdRng::seed_from_u64(17);
        let mut samples = Vec::new();
        for i in 0..40 {
            let right_tag = if i % 2 == 0 { 5 } else { 2 };
            let label = if right_tag == 5 { 2 } else { 0 };
            samples.push((plan(0), plan(right_tag), label));
        }
        let first = m.train_epoch(&samples, &mut rng);
        let mut last = first;
        for _ in 0..30 {
            last = m.train_epoch(&samples, &mut rng);
        }
        assert!(last < first, "loss should fall: {first} → {last}");
        assert!(m.accuracy(&samples) > 0.9, "accuracy={}", m.accuracy(&samples));
    }

    #[test]
    fn skewed_labels_still_learn_minority_class() {
        // 90% score-0 pairs, 10% score-2 — the situation the asymmetric loss
        // is designed for.
        let mut m = model();
        let mut rng = StdRng::seed_from_u64(23);
        let mut samples = Vec::new();
        for i in 0..50 {
            if i % 10 == 0 {
                samples.push((plan(1), plan(5), 2usize));
            } else {
                samples.push((plan(1), plan((i % 4) as usize % 4), 0usize));
            }
        }
        for _ in 0..40 {
            m.train_epoch(&samples, &mut rng);
        }
        // The minority pair must be classified correctly.
        assert_eq!(m.predict(&plan(1), &plan(5)), 2);
    }

    #[test]
    fn empty_training_set_is_noop() {
        let mut m = model();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.train_epoch(&[], &mut rng), 0.0);
        assert_eq!(m.accuracy(&[]), 0.0);
    }
}
