//! The asymmetric advantage model (§IV-B, §IV-C).
//!
//! `θadv(CP_l, CP_r) → FC2( FC1(ϕ(State(l)) ⊕ pos_left) −
//! FC1(ϕ(State(r)) ⊕ pos_right) )`, mapping a plan pair to `K = 3` advantage
//! scores. The learned left/right position embeddings make the model
//! *asymmetric*: swapping the pair is not guaranteed to negate the output,
//! which matters because the advantage definition itself is anchored on the
//! left plan.
//!
//! Training uses the asymmetric focal loss with label smoothing: positive
//! (target) classes decay with `γ+`, negative classes with `γ− > γ+`, so the
//! skew toward score-0 samples (most mutations make plans worse) does not
//! drown out the rare score-2 "much better plan" examples.

use foss_nn::{Adam, Embedding, GradStore, Graph, Linear, Matrix, ParamSet, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use crate::config::FossConfig;
use crate::encoding::EncodedPlan;
use crate::state_net::StateNetwork;

/// A labelled training pair: `(left, right, Adv(left, right))`.
pub type AamSample = (EncodedPlan, EncodedPlan, usize);

/// Number of gradient shards each training minibatch is split into. Shard
/// boundaries are a pure function of the minibatch size (never of the host's
/// core count), and shard gradients are merged in shard order, so training is
/// bit-for-bit reproducible on any machine.
const GRAD_SHARDS: usize = 4;

/// The AAM: its own state network, position embeddings and difference head.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdvantageModel {
    set: ParamSet,
    state_net: StateNetwork,
    pos_emb: Embedding,
    fc1: Linear,
    fc2: Linear,
    adam: Adam,
    gamma_pos: f32,
    gamma_neg: f32,
    smoothing: f32,
    k: usize,
    batch: usize,
}

impl AdvantageModel {
    /// Allocate a fresh model for a schema with `table_vocab` table ids.
    pub fn new(table_vocab: usize, cfg: &FossConfig, rng: &mut StdRng) -> Self {
        let mut set = ParamSet::new();
        let state_net = StateNetwork::new(
            &mut set,
            table_vocab,
            cfg.d_model,
            cfg.d_state,
            cfg.heads,
            cfg.blocks,
            rng,
        );
        let d_pos = 8;
        let pos_emb = Embedding::new(&mut set, 2, d_pos, rng);
        let fc1 = Linear::new(&mut set, cfg.d_state + d_pos, cfg.d_state, rng);
        let fc2 = Linear::new(&mut set, cfg.d_state, cfg.num_classes(), rng);
        Self {
            set,
            state_net,
            pos_emb,
            fc1,
            fc2,
            adam: Adam::new(cfg.aam_lr),
            gamma_pos: cfg.focal_gamma_pos,
            gamma_neg: cfg.focal_gamma_neg,
            smoothing: cfg.label_smoothing,
            k: cfg.num_classes(),
            batch: cfg.aam_batch,
        }
    }

    /// Number of advantage classes.
    pub fn num_classes(&self) -> usize {
        self.k
    }

    /// Record the batched forward pass on ONE tape; returns `B×K` logits.
    ///
    /// All left plans and all right plans go through the state network as two
    /// stacked segment batches, so graph construction, embedding gathers and
    /// attention kernels are paid once per candidate set instead of once per
    /// pair.
    fn forward_pairs(&self, g: &mut Graph, pairs: &[(&EncodedPlan, &EncodedPlan)]) -> Var {
        let b = pairs.len();
        // Candidate sets repeat plans constantly (the tournament scores one
        // champion against many challengers; the original plan appears in
        // every wave), so the expensive state network runs once per *unique*
        // plan — identified by reference — and pairs gather their rows from
        // that shared batch. Gather copies rows verbatim, so dedup changes
        // no bits.
        let mut uniq: Vec<&EncodedPlan> = Vec::new();
        let mut index_of: foss_common::FxHashMap<*const EncodedPlan, usize> =
            foss_common::FxHashMap::default();
        let mut left_ix = Vec::with_capacity(b);
        let mut right_ix = Vec::with_capacity(b);
        for &(l, r) in pairs {
            for (plan, ix) in [(l, &mut left_ix), (r, &mut right_ix)] {
                let id = *index_of
                    .entry(plan as *const EncodedPlan)
                    .or_insert_with(|| {
                        uniq.push(plan);
                        uniq.len() - 1
                    });
                ix.push(id);
            }
        }
        let states = self.state_net.forward_batch(g, &self.set, &uniq);
        let sl = g.gather(states, &left_ix);
        let sr = g.gather(states, &right_ix);
        let pos_l = self.pos_emb.forward(g, &self.set, &vec![0usize; b]);
        let pos_r = self.pos_emb.forward(g, &self.set, &vec![1usize; b]);
        let hl_in = g.concat_cols(&[sl, pos_l]);
        let hr_in = g.concat_cols(&[sr, pos_r]);
        let hl = self.fc1.forward(g, &self.set, hl_in);
        let hl = g.relu(hl);
        let hr = self.fc1.forward(g, &self.set, hr_in);
        let hr = g.relu(hr);
        let diff = g.sub(hl, hr);
        self.fc2.forward(g, &self.set, diff)
    }

    /// Predict the discrete advantage score of `right` over `left`.
    /// Singleton case of [`AdvantageModel::predict_batch`] — same tape, same
    /// kernels, same bit patterns.
    pub fn predict(&self, left: &EncodedPlan, right: &EncodedPlan) -> usize {
        self.predict_batch(&[(left, right)])[0]
    }

    /// Predict scores for a batch of pairs with one graph build and one
    /// argmax sweep over the `B×K` logits.
    pub fn predict_batch(&self, pairs: &[(&EncodedPlan, &EncodedPlan)]) -> Vec<usize> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::inference();
        let logits = self.forward_pairs(&mut g, pairs);
        let m = g.value(logits);
        (0..m.rows)
            .map(|r| {
                m.row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// The asymmetric focal loss with label smoothing, summed over the rows
    /// of `logits` and scaled by `1/denom`. Workers pass the *full* minibatch
    /// size as `denom` so shard losses add up to the minibatch mean loss.
    fn loss(&self, g: &mut Graph, logits: Var, targets: &[usize], denom: usize) -> Var {
        let b = targets.len();
        let k = self.k;
        let eps = self.smoothing;
        let mut h_pos = Matrix::zeros(b, k);
        let mut h_neg = Matrix::zeros(b, k);
        for (r, &y) in targets.iter().enumerate() {
            for c in 0..k {
                if c == y {
                    h_pos.set(r, c, 1.0 - eps);
                } else {
                    h_neg.set(r, c, eps / (k as f32 - 1.0));
                }
            }
        }
        let p = g.softmax_rows(logits);
        let lp = g.log_softmax_rows(logits);
        let neg_lp = g.scale(lp, -1.0);
        // Positive classes: decay (1 − p)^γ+.
        let ones = g.input(Matrix::full(b, k, 1.0));
        let om_p = g.sub(ones, p);
        let decay_pos = g.pow_const(om_p, self.gamma_pos);
        let wpos = g.input(h_pos);
        let tp0 = g.mul(decay_pos, neg_lp);
        let term_pos = g.mul(tp0, wpos);
        // Negative classes: p̂ = 1 − p, so the decay is p^γ−.
        let decay_neg = g.pow_const(p, self.gamma_neg);
        let wneg = g.input(h_neg);
        let tn0 = g.mul(decay_neg, neg_lp);
        let term_neg = g.mul(tn0, wneg);
        let total = g.add(term_pos, term_neg);
        let s = g.sum_all(total);
        g.scale(s, 1.0 / denom as f32)
    }

    /// Forward + backward one minibatch, sharded across a scoped-thread
    /// worker pool via [`foss_common::run_sharded`]. Each worker runs its
    /// shard's batched tape against the shared parameters and accumulates
    /// into a private [`GradStore`]; results come back in shard order, so
    /// the merge is independent of thread scheduling. Returns the minibatch
    /// loss and the per-shard gradient stores in shard order.
    fn sharded_grads(
        &self,
        pairs: &[(&EncodedPlan, &EncodedPlan)],
        targets: &[usize],
    ) -> (f32, Vec<GradStore>) {
        let b = pairs.len();
        let shard = b.div_ceil(GRAD_SHARDS).max(1);
        let nshards = b.div_ceil(shard);
        let results = foss_common::run_sharded(nshards, |si| {
            let pc = &pairs[si * shard..((si + 1) * shard).min(b)];
            let tc = &targets[si * shard..((si + 1) * shard).min(b)];
            let mut g = Graph::new();
            let logits = self.forward_pairs(&mut g, pc);
            let loss = self.loss(&mut g, logits, tc, b);
            let lv = g.value(loss).get(0, 0);
            let mut grads = GradStore::zeros_like(&self.set);
            g.backward_into(loss, &mut grads);
            (lv, grads)
        });
        let mut loss_total = 0.0;
        let mut stores = Vec::with_capacity(results.len());
        for (lv, grads) in results {
            loss_total += lv;
            stores.push(grads);
        }
        (loss_total, stores)
    }

    /// One supervised epoch over `samples`; returns the mean minibatch loss.
    ///
    /// Minibatch order and composition come from the seeded `rng` exactly as
    /// in the sequential implementation; each minibatch's gradient is then
    /// computed by `AdvantageModel::sharded_grads` in parallel and applied
    /// as one Adam step. Fixed shard boundaries + ordered merges make the
    /// whole epoch bit-for-bit deterministic for a fixed seed.
    pub fn train_epoch(&mut self, samples: &[AamSample], rng: &mut StdRng) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut order: Vec<usize> = (0..samples.len()).collect();
        order.shuffle(rng);
        let mut total = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(self.batch.max(1)) {
            let pairs: Vec<(&EncodedPlan, &EncodedPlan)> = chunk
                .iter()
                .map(|&i| (&samples[i].0, &samples[i].1))
                .collect();
            let targets: Vec<usize> = chunk.iter().map(|&i| samples[i].2).collect();
            let (loss, stores) = self.sharded_grads(&pairs, &targets);
            total += loss;
            batches += 1;
            self.set.zero_grad();
            for store in &stores {
                store.add_into(&mut self.set);
            }
            let norm = self.set.grad_norm();
            if norm > 5.0 {
                self.set.scale_grads(5.0 / norm);
            }
            self.adam.step(&mut self.set);
        }
        total / batches as f32
    }

    /// Classification accuracy on `samples`.
    pub fn accuracy(&self, samples: &[AamSample]) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let pairs: Vec<(&EncodedPlan, &EncodedPlan)> =
            samples.iter().map(|s| (&s.0, &s.1)).collect();
        let preds = self.predict_batch(&pairs);
        let hits = preds
            .iter()
            .zip(samples)
            .filter(|(p, s)| **p == s.2)
            .count();
        hits as f32 / samples.len() as f32
    }
}

impl foss_common::Codec for AdvantageModel {
    fn encode(&self, w: &mut foss_common::ByteWriter) {
        self.set.encode(w);
        self.state_net.encode(w);
        self.pos_emb.encode(w);
        self.fc1.encode(w);
        self.fc2.encode(w);
        self.adam.encode(w);
        w.put_f32(self.gamma_pos);
        w.put_f32(self.gamma_neg);
        w.put_f32(self.smoothing);
        w.put_usize(self.k);
        w.put_usize(self.batch);
    }
    fn decode(r: &mut foss_common::ByteReader<'_>) -> foss_common::Result<Self> {
        Ok(Self {
            set: ParamSet::decode(r)?,
            state_net: StateNetwork::decode(r)?,
            pos_emb: Embedding::decode(r)?,
            fc1: Linear::decode(r)?,
            fc2: Linear::decode(r)?,
            adam: Adam::decode(r)?,
            gamma_pos: r.get_f32()?,
            gamma_neg: r.get_f32()?,
            smoothing: r.get_f32()?,
            k: r.get_usize()?,
            batch: r.get_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Synthetic plans whose first op code decides the true label, so the
    /// model has a learnable signal.
    fn plan(tag: usize) -> EncodedPlan {
        EncodedPlan {
            ops: vec![tag % 6, 0, 1],
            tables: vec![0, 1, 2],
            sels: vec![10, tag % 10, 0],
            rows: vec![tag % 20, 3, 4],
            heights: vec![1, 0, 0],
            structures: vec![3, 0, 1],
            reach: vec![
                vec![true, true, true],
                vec![true, true, false],
                vec![true, false, true],
            ],
            step: 0.0,
        }
    }

    fn model() -> AdvantageModel {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = FossConfig::tiny();
        AdvantageModel::new(4, &cfg, &mut rng)
    }

    #[test]
    fn predict_returns_valid_class() {
        let m = model();
        let s = m.predict(&plan(0), &plan(1));
        assert!(s < 3);
        // Batch agrees with single prediction.
        let b = m.predict_batch(&[(&plan(0), &plan(1))]);
        assert_eq!(b[0], s);
    }

    #[test]
    fn asymmetry_left_right_not_forced_symmetric() {
        // The architecture must at least be *capable* of asymmetric outputs:
        // raw logits for (a,b) and (b,a) differ for a random init.
        let m = model();
        let a = plan(0);
        let b = plan(5);
        let mut g1 = Graph::new();
        let l1 = m.forward_pairs(&mut g1, &[(&a, &b)]);
        let mut g2 = Graph::new();
        let l2 = m.forward_pairs(&mut g2, &[(&b, &a)]);
        assert_ne!(g1.value(l1).data, g2.value(l2).data);
    }

    #[test]
    fn learns_a_separable_labelling() {
        // Label = 2 when right plan has op tag 5, else 0. The model should
        // fit this quickly.
        let mut m = model();
        let mut rng = StdRng::seed_from_u64(17);
        let mut samples = Vec::new();
        for i in 0..40 {
            let right_tag = if i % 2 == 0 { 5 } else { 2 };
            let label = if right_tag == 5 { 2 } else { 0 };
            samples.push((plan(0), plan(right_tag), label));
        }
        let first = m.train_epoch(&samples, &mut rng);
        let mut last = first;
        for _ in 0..30 {
            last = m.train_epoch(&samples, &mut rng);
        }
        assert!(last < first, "loss should fall: {first} → {last}");
        assert!(
            m.accuracy(&samples) > 0.9,
            "accuracy={}",
            m.accuracy(&samples)
        );
    }

    #[test]
    fn skewed_labels_still_learn_minority_class() {
        // 90% score-0 pairs, 10% score-2 — the situation the asymmetric loss
        // is designed for.
        let mut m = model();
        let mut rng = StdRng::seed_from_u64(23);
        let mut samples = Vec::new();
        for i in 0..50 {
            if i % 10 == 0 {
                samples.push((plan(1), plan(5), 2usize));
            } else {
                samples.push((plan(1), plan((i % 4) as usize % 4), 0usize));
            }
        }
        for _ in 0..40 {
            m.train_epoch(&samples, &mut rng);
        }
        // The minority pair must be classified correctly.
        assert_eq!(m.predict(&plan(1), &plan(5)), 2);
    }

    #[test]
    fn predict_batch_matches_predict_loop_exactly() {
        let m = model();
        // Ragged pair set: plans of different lengths in one batch.
        let mut long = plan(3);
        long.ops.push(2);
        long.tables.push(3);
        long.sels.push(4);
        long.rows.push(7);
        long.heights.push(2);
        long.structures.push(2);
        long.reach = vec![vec![true; 4]; 4];
        let plans = [plan(0), plan(1), plan(5), long];
        let mut pairs = Vec::new();
        for l in &plans {
            for r in &plans {
                pairs.push((l, r));
            }
        }
        let batched = m.predict_batch(&pairs);
        let looped: Vec<usize> = pairs.iter().map(|(l, r)| m.predict(l, r)).collect();
        assert_eq!(batched, looped);
    }

    #[test]
    fn parallel_train_epoch_is_deterministic() {
        // Same seed ⇒ bit-for-bit identical models, losses and predictions,
        // regardless of worker scheduling.
        let run = || {
            let mut m = model();
            let mut rng = StdRng::seed_from_u64(99);
            let samples: Vec<AamSample> =
                (0..37) // not a multiple of batch or shard count
                    .map(|i| (plan(i), plan((i + 3) % 7), i % 3))
                    .collect();
            let losses: Vec<f32> = (0..4).map(|_| m.train_epoch(&samples, &mut rng)).collect();
            let preds = m.predict_batch(&samples.iter().map(|s| (&s.0, &s.1)).collect::<Vec<_>>());
            (losses, preds)
        };
        let (l1, p1) = run();
        let (l2, p2) = run();
        assert_eq!(l1, l2, "losses must be bitwise identical");
        assert_eq!(p1, p2);
    }

    #[test]
    fn empty_training_set_is_noop() {
        let mut m = model();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.train_epoch(&[], &mut rng), 0.0);
        assert_eq!(m.accuracy(&[]), 0.0);
    }
}
