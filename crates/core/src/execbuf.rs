//! The execution buffer (§V-B, Fig. 3).
//!
//! Stores every plan FOSS has executed for real — original plans, validated
//! promising plans, randomly sampled candidates — keyed by query. From it we
//! derive:
//!
//! * AAM training pairs `{(CP_l, CP_r), Adv(CP_l, CP_r)}` labelled from true
//!   latencies, with double-timeout pairs filtered out (§V-B);
//! * the episode-bounty **reference set**: best plan, median better-than-
//!   original plan, and the original plan, with their reference bounties
//!   `refb_i = Adv_init(CP_ORI, CP_ref_i)`.

use foss_common::{FxHashMap, FxHashSet, QueryId};
use foss_optimizer::{Icp, PhysicalPlan};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::aam::AamSample;
use crate::advantage::AdvantageScale;
use crate::encoding::EncodedPlan;

/// One query's labelling work: its executed plans and the chosen pair
/// indices into them.
type PairJob<'a> = (Vec<&'a ExecutedPlan>, Vec<(usize, usize)>);

/// One executed plan with its measured (work-unit) latency.
#[derive(Debug, Clone)]
pub struct ExecutedPlan {
    /// Incomplete plan that produced it.
    pub icp: Icp,
    /// Full physical plan.
    pub plan: PhysicalPlan,
    /// Encoding used for AAM training (step = the step it was produced at).
    pub encoded: EncodedPlan,
    /// Measured latency; for timed-out plans this is the budget (a lower
    /// bound on the true latency).
    pub latency: f64,
    /// Whether execution hit the dynamic timeout.
    pub timed_out: bool,
}

/// Per-query store of executed plans.
#[derive(Debug, Clone, Default)]
pub struct ExecutionBuffer {
    originals: FxHashMap<QueryId, ExecutedPlan>,
    plans: FxHashMap<QueryId, Vec<ExecutedPlan>>,
    seen: FxHashMap<QueryId, FxHashSet<u64>>,
}

impl ExecutionBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the original (expert) plan for a query.
    pub fn record_original(&mut self, qid: QueryId, executed: ExecutedPlan) {
        self.seen
            .entry(qid)
            .or_default()
            .insert(executed.icp.fingerprint());
        self.originals.insert(qid, executed);
    }

    /// Record an executed candidate; duplicates (same ICP) are dropped.
    /// Returns whether the plan was new.
    pub fn record(&mut self, qid: QueryId, executed: ExecutedPlan) -> bool {
        if !self
            .seen
            .entry(qid)
            .or_default()
            .insert(executed.icp.fingerprint())
        {
            return false;
        }
        self.plans.entry(qid).or_default().push(executed);
        true
    }

    /// The original plan's execution, if recorded.
    pub fn original(&self, qid: QueryId) -> Option<&ExecutedPlan> {
        self.originals.get(&qid)
    }

    /// Whether this exact ICP was already executed for `qid`.
    pub fn contains(&self, qid: QueryId, icp: &Icp) -> bool {
        self.seen
            .get(&qid)
            .is_some_and(|s| s.contains(&icp.fingerprint()))
    }

    /// Executed candidates (excluding the original) for `qid`.
    pub fn plans(&self, qid: QueryId) -> &[ExecutedPlan] {
        self.plans.get(&qid).map_or(&[], Vec::as_slice)
    }

    /// Fetch the recorded execution of `icp` for `qid`, if any (checks the
    /// original too).
    pub fn get(&self, qid: QueryId, icp: &Icp) -> Option<&ExecutedPlan> {
        let fp = icp.fingerprint();
        if let Some(orig) = self.originals.get(&qid) {
            if orig.icp.fingerprint() == fp {
                return Some(orig);
            }
        }
        self.plans(qid).iter().find(|p| p.icp.fingerprint() == fp)
    }

    /// All queries with at least one recorded plan or original.
    pub fn queries(&self) -> Vec<QueryId> {
        let mut q: Vec<QueryId> = self.originals.keys().copied().collect();
        for k in self.plans.keys() {
            if !q.contains(k) {
                q.push(*k);
            }
        }
        q.sort_by_key(|q| q.0);
        q
    }

    /// Total executed plans (candidates + originals).
    pub fn total_plans(&self) -> usize {
        self.originals.len() + self.plans.values().map(Vec::len).sum::<usize>()
    }

    /// Best (lowest-latency) non-timed-out executed plan for `qid`,
    /// considering the original too.
    pub fn best(&self, qid: QueryId) -> Option<&ExecutedPlan> {
        let cands = self
            .plans(qid)
            .iter()
            .chain(self.original(qid))
            .filter(|p| !p.timed_out);
        cands.min_by(|a, b| a.latency.total_cmp(&b.latency))
    }

    /// The episode-bounty reference set for `qid` (§III Reward):
    /// `[best, median-of-better-than-original, original]` with their
    /// `refb_i = Adv_init(ORI, ref_i)`, ordered by decreasing bounty.
    /// Degenerates gracefully when no plan beats the original yet.
    pub fn references(&self, qid: QueryId, scale: &AdvantageScale) -> Vec<(&ExecutedPlan, f64)> {
        let Some(orig) = self.original(qid) else {
            return Vec::new();
        };
        let mut better: Vec<&ExecutedPlan> = self
            .plans(qid)
            .iter()
            .filter(|p| !p.timed_out && p.latency < orig.latency)
            .collect();
        better.sort_by(|a, b| a.latency.total_cmp(&b.latency));
        let mut refs: Vec<(&ExecutedPlan, f64)> = Vec::with_capacity(3);
        if let Some(best) = better.first() {
            refs.push((best, scale.initial_advantage(orig.latency, best.latency)));
        }
        if better.len() >= 2 {
            let median = better[better.len() / 2];
            refs.push((
                median,
                scale.initial_advantage(orig.latency, median.latency),
            ));
        }
        refs.push((orig, 0.0));
        refs
    }

    /// Build AAM training pairs from true latencies.
    ///
    /// All ordered pairs of distinct executed plans (original included) per
    /// query, minus pairs where *both* sides timed out; capped at
    /// `max_pairs_per_query` by random subsampling to keep epochs bounded.
    ///
    /// Runs in two phases so the labelling loop can fan out: pair *selection*
    /// is sequential (it consumes the seeded `rng`, so ordering must be
    /// stable), then pair *materialisation* — scoring and cloning the
    /// encodings — is sharded across a scoped worker pool with per-query
    /// output slots, keeping the result identical to the sequential loop.
    pub fn training_pairs(
        &self,
        scale: &AdvantageScale,
        max_pairs_per_query: usize,
        rng: &mut StdRng,
    ) -> Vec<AamSample> {
        // Phase 1: choose which pairs to emit per query (rng-dependent).
        let mut jobs: Vec<PairJob> = Vec::new();
        for qid in self.queries() {
            let mut all: Vec<&ExecutedPlan> = self.plans(qid).iter().collect();
            if let Some(orig) = self.original(qid) {
                all.push(orig);
            }
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            for i in 0..all.len() {
                for j in 0..all.len() {
                    if i == j {
                        continue;
                    }
                    if all[i].timed_out && all[j].timed_out {
                        continue; // §V-B: drop double-timeout pairs
                    }
                    pairs.push((i, j));
                }
            }
            if pairs.len() > max_pairs_per_query {
                pairs.shuffle(rng);
                pairs.truncate(max_pairs_per_query);
            }
            if !pairs.is_empty() {
                jobs.push((all, pairs));
            }
        }
        // Phase 2: label + clone in parallel, results merged in job order.
        const WORKERS: usize = 4;
        let chunk = jobs.len().div_ceil(WORKERS).max(1);
        let nshards = jobs.len().div_ceil(chunk);
        foss_common::run_sharded(nshards, |wi| {
            jobs[wi * chunk..((wi + 1) * chunk).min(jobs.len())]
                .iter()
                .flat_map(|(all, pairs)| {
                    pairs.iter().map(|&(i, j)| {
                        let label = scale.score_latencies(all[i].latency, all[j].latency);
                        (all[i].encoded.clone(), all[j].encoded.clone(), label)
                    })
                })
                .collect::<Vec<AamSample>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

impl foss_common::Codec for ExecutedPlan {
    fn encode(&self, w: &mut foss_common::ByteWriter) {
        self.icp.encode(w);
        self.plan.encode(w);
        self.encoded.encode(w);
        w.put_f64(self.latency);
        w.put_bool(self.timed_out);
    }
    fn decode(r: &mut foss_common::ByteReader<'_>) -> foss_common::Result<Self> {
        Ok(Self {
            icp: Icp::decode(r)?,
            plan: PhysicalPlan::decode(r)?,
            encoded: EncodedPlan::decode(r)?,
            latency: r.get_f64()?,
            timed_out: r.get_bool()?,
        })
    }
}

/// Maps and sets are canonicalised by sorting keys so the same buffer always
/// serialises to the same bytes regardless of hash-map iteration order.
impl foss_common::Codec for ExecutionBuffer {
    fn encode(&self, w: &mut foss_common::ByteWriter) {
        let mut orig_keys: Vec<QueryId> = self.originals.keys().copied().collect();
        orig_keys.sort_unstable();
        w.put_usize(orig_keys.len());
        for qid in orig_keys {
            qid.encode(w);
            self.originals[&qid].encode(w);
        }
        let mut plan_keys: Vec<QueryId> = self.plans.keys().copied().collect();
        plan_keys.sort_unstable();
        w.put_usize(plan_keys.len());
        for qid in plan_keys {
            qid.encode(w);
            self.plans[&qid].encode(w);
        }
        let mut seen_keys: Vec<QueryId> = self.seen.keys().copied().collect();
        seen_keys.sort_unstable();
        w.put_usize(seen_keys.len());
        for qid in seen_keys {
            qid.encode(w);
            let mut fps: Vec<u64> = self.seen[&qid].iter().copied().collect();
            fps.sort_unstable();
            fps.encode(w);
        }
    }
    fn decode(r: &mut foss_common::ByteReader<'_>) -> foss_common::Result<Self> {
        let mut originals = FxHashMap::default();
        for _ in 0..r.get_len()? {
            let qid = QueryId::decode(r)?;
            originals.insert(qid, ExecutedPlan::decode(r)?);
        }
        let mut plans = FxHashMap::default();
        for _ in 0..r.get_len()? {
            let qid = QueryId::decode(r)?;
            plans.insert(qid, Vec::<ExecutedPlan>::decode(r)?);
        }
        let mut seen = FxHashMap::default();
        for _ in 0..r.get_len()? {
            let qid = QueryId::decode(r)?;
            let fps: Vec<u64> = Vec::decode(r)?;
            seen.insert(qid, fps.into_iter().collect::<FxHashSet<u64>>());
        }
        Ok(Self {
            originals,
            plans,
            seen,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_optimizer::{AccessPath, JoinMethod, PlanNode};

    fn dummy_encoded(tag: usize) -> EncodedPlan {
        EncodedPlan {
            ops: vec![tag % 6],
            tables: vec![1],
            sels: vec![0],
            rows: vec![1],
            heights: vec![0],
            structures: vec![2],
            reach: vec![vec![true]],
            step: 0.0,
        }
    }

    fn executed(order: Vec<usize>, latency: f64, timed_out: bool) -> ExecutedPlan {
        let n = order.len();
        let icp = Icp::new(order, vec![JoinMethod::Hash; n - 1]).unwrap();
        ExecutedPlan {
            icp,
            plan: PhysicalPlan {
                root: PlanNode::Scan {
                    relation: 0,
                    access: AccessPath::SeqScan,
                    est_rows: 1.0,
                    est_cost: 1.0,
                },
            },
            encoded: dummy_encoded(latency as usize),
            latency,
            timed_out,
        }
    }

    fn qid() -> QueryId {
        QueryId::new(0)
    }

    #[test]
    fn dedup_by_icp_fingerprint() {
        let mut buf = ExecutionBuffer::new();
        buf.record_original(qid(), executed(vec![0, 1], 100.0, false));
        assert!(buf.record(qid(), executed(vec![1, 0], 50.0, false)));
        assert!(!buf.record(qid(), executed(vec![1, 0], 55.0, false)));
        assert_eq!(buf.plans(qid()).len(), 1);
        assert_eq!(buf.total_plans(), 2);
    }

    #[test]
    fn original_icp_is_deduped_too() {
        let mut buf = ExecutionBuffer::new();
        buf.record_original(qid(), executed(vec![0, 1], 100.0, false));
        assert!(!buf.record(qid(), executed(vec![0, 1], 100.0, false)));
    }

    #[test]
    fn best_ignores_timeouts() {
        let mut buf = ExecutionBuffer::new();
        buf.record_original(qid(), executed(vec![0, 1, 2], 100.0, false));
        buf.record(qid(), executed(vec![1, 0, 2], 20.0, true)); // timed out
        buf.record(qid(), executed(vec![2, 0, 1], 40.0, false));
        assert_eq!(buf.best(qid()).unwrap().latency, 40.0);
    }

    #[test]
    fn references_order_and_bounties() {
        let scale = AdvantageScale::paper_default();
        let mut buf = ExecutionBuffer::new();
        buf.record_original(qid(), executed(vec![0, 1, 2, 3], 100.0, false));
        buf.record(qid(), executed(vec![1, 0, 2, 3], 20.0, false));
        buf.record(qid(), executed(vec![2, 0, 1, 3], 50.0, false));
        buf.record(qid(), executed(vec![3, 0, 1, 2], 80.0, false));
        buf.record(qid(), executed(vec![0, 2, 1, 3], 150.0, false)); // worse
        let refs = buf.references(qid(), &scale);
        assert_eq!(refs.len(), 3);
        // Best = 20 → refb 0.8; median of {20,50,80} = 50 → 0.5; orig → 0.
        assert_eq!(refs[0].0.latency, 20.0);
        assert!((refs[0].1 - 0.8).abs() < 1e-9);
        assert_eq!(refs[1].0.latency, 50.0);
        assert!((refs[1].1 - 0.5).abs() < 1e-9);
        assert_eq!(refs[2].1, 0.0);
        // Bounties decrease.
        assert!(refs[0].1 >= refs[1].1 && refs[1].1 >= refs[2].1);
    }

    #[test]
    fn references_degenerate_without_better_plans() {
        let scale = AdvantageScale::paper_default();
        let mut buf = ExecutionBuffer::new();
        buf.record_original(qid(), executed(vec![0, 1], 100.0, false));
        buf.record(qid(), executed(vec![1, 0], 500.0, false));
        let refs = buf.references(qid(), &scale);
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].1, 0.0);
    }

    #[test]
    fn training_pairs_filter_double_timeouts() {
        use rand::SeedableRng;
        let scale = AdvantageScale::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = ExecutionBuffer::new();
        buf.record_original(qid(), executed(vec![0, 1, 2], 100.0, false));
        buf.record(qid(), executed(vec![1, 0, 2], 150.0, true));
        buf.record(qid(), executed(vec![2, 0, 1], 150.0, true));
        let pairs = buf.training_pairs(&scale, 1000, &mut rng);
        // 3 plans → 6 ordered pairs, minus the 2 double-timeout pairs.
        assert_eq!(pairs.len(), 4);
        // Label sanity: original (100) vs timeout (150): right worse → 0;
        // timeout vs original: saves 1/3 → score 1.
        assert!(pairs.iter().any(|(_, _, l)| *l == 1));
    }

    #[test]
    fn training_pairs_capped() {
        use rand::SeedableRng;
        let scale = AdvantageScale::paper_default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = ExecutionBuffer::new();
        buf.record_original(qid(), executed(vec![0, 1, 2, 3], 100.0, false));
        // 6 distinct candidates → 7 plans → 42 ordered pairs.
        let perms: Vec<Vec<usize>> = vec![
            vec![1, 0, 2, 3],
            vec![2, 0, 1, 3],
            vec![3, 0, 1, 2],
            vec![0, 2, 1, 3],
            vec![0, 3, 1, 2],
            vec![1, 2, 0, 3],
        ];
        for (i, p) in perms.into_iter().enumerate() {
            buf.record(qid(), executed(p, 50.0 + i as f64, false));
        }
        let pairs = buf.training_pairs(&scale, 10, &mut rng);
        assert_eq!(pairs.len(), 10);
    }
}
