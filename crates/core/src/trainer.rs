//! The FOSS training loop (Fig. 3) and inference facade.
//!
//! One [`Foss`] instance owns the planner agent(s), the AAM, the execution
//! buffer and handles the full loop:
//!
//! 1. **Bootstrap** — run real-environment episodes with the randomly
//!    initialised planner, executing candidate plans under the dynamic
//!    timeout into the execution buffer; train the AAM on the resulting
//!    latency-labelled pairs.
//! 2. **Iterate** — agents interact with the simulated environment
//!    `Ê(Γp, θadv)` (Algorithm 1), PPO-updating on simulated experience;
//!    *promising* plans flagged by the AAM are validated in the real
//!    environment, extra random queries are sampled for validation, and the
//!    AAM is retrained from the grown buffer.
//! 3. **Inference** — each agent greedily repairs the expert plan; the AAM
//!    tournament picks the final plan among candidates (and among agents in
//!    multi-agent mode).

use std::sync::Arc;

use foss_common::{FossError, FxHashMap, FxHashSet, QueryId, Result};
use foss_executor::CachingExecutor;
use foss_optimizer::{PhysicalPlan, TraditionalOptimizer};
use foss_query::Query;
use foss_rl::SharedRolloutBuffer;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::aam::AdvantageModel;
use crate::actions::ActionSpace;
use crate::advantage::AdvantageScale;
use crate::agent::PlannerAgent;
use crate::config::FossConfig;
use crate::encoding::PlanEncoder;
use crate::envs::{RealEnv, SimEnv};
use crate::episode::{run_episode, PlanCtx};
use crate::execbuf::{ExecutedPlan, ExecutionBuffer};
use crate::snapshot::PlannerSnapshot;

/// Per-iteration training diagnostics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrainReport {
    /// Iteration index.
    pub iteration: usize,
    /// Mean AAM loss of the last retraining epoch.
    pub aam_loss: f32,
    /// AAM accuracy on its own training pairs (optimistic, for trend only).
    pub aam_accuracy: f32,
    /// Mean episode reward across agents.
    pub mean_reward: f32,
    /// Total real executions performed so far (cache misses).
    pub plans_executed: u64,
    /// Plans stored in the execution buffer.
    pub buffer_plans: usize,
}

/// Result of one inference call with provenance metadata.
#[derive(Debug, Clone)]
pub struct Inference {
    /// The selected plan.
    pub plan: PhysicalPlan,
    /// How many doctor steps the selected plan is from the original
    /// (0 = the expert plan was kept).
    pub selected_step: usize,
    /// Number of candidate plans considered.
    pub candidates: usize,
    /// AAM advantage score of the selected plan over the expert plan
    /// (0 when the expert plan was kept; `K-1` is the strongest verdict).
    /// The serving path uses this for its low-confidence fallback.
    pub aam_confidence: usize,
}

/// What one parallel episode runner brings back for the agent-order merge.
#[derive(Default)]
struct AgentRun {
    reward_sum: f32,
    episodes: usize,
    /// `(query index, repaired plan)` candidates for real-env validation;
    /// deduplication happens at the merge, across agents.
    promising: Vec<(usize, PlanCtx)>,
}

/// The FOSS system.
pub struct Foss {
    cfg: FossConfig,
    scale: AdvantageScale,
    optimizer: Arc<TraditionalOptimizer>,
    executor: Arc<CachingExecutor>,
    encoder: PlanEncoder,
    space: ActionSpace,
    agents: Vec<PlannerAgent>,
    aam: AdvantageModel,
    buffer: ExecutionBuffer,
    originals: FxHashMap<QueryId, PhysicalPlan>,
    rng: StdRng,
}

impl Foss {
    /// Assemble FOSS over an expert optimizer and a shared caching executor.
    ///
    /// `max_relations` sizes the global action space (largest `n` in the
    /// workload); `table_rows` feeds the plan encoder's selectivity buckets.
    pub fn new(
        optimizer: Arc<TraditionalOptimizer>,
        executor: Arc<CachingExecutor>,
        max_relations: usize,
        table_rows: Vec<u64>,
        cfg: FossConfig,
    ) -> Self {
        let stream = foss_common::SeedStream::new(cfg.seed);
        let rng = StdRng::seed_from_u64(stream.derive("foss-trainer"));
        let table_count = table_rows.len();
        let encoder = PlanEncoder::new(table_count, table_rows);
        let space = ActionSpace::new(max_relations.max(2));
        let mut agents = Vec::with_capacity(cfg.num_agents);
        for a in 0..cfg.num_agents.max(1) {
            // Strategy diversification (§VI-C5): vary LR and discount.
            let lr_scale = 1.0 / (1.0 + a as f32 * 0.5);
            let gamma = cfg.rl_gamma - 0.04 * a as f32;
            agents.push(PlannerAgent::with_strategy(
                table_count + 1,
                space.len(),
                &cfg,
                stream.derive_indexed("agent", a as u64),
                lr_scale,
                gamma,
            ));
        }
        let aam = AdvantageModel::new(
            table_count + 1,
            &cfg,
            &mut StdRng::seed_from_u64(stream.derive("aam")),
        );
        let scale = AdvantageScale::new(cfg.adv_points.clone());
        Self {
            cfg,
            scale,
            optimizer,
            executor,
            encoder,
            space,
            agents,
            aam,
            buffer: ExecutionBuffer::new(),
            originals: FxHashMap::default(),
            rng,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &FossConfig {
        &self.cfg
    }

    /// The trained advantage model.
    pub fn aam(&self) -> &AdvantageModel {
        &self.aam
    }

    /// The execution buffer (inspection / metrics).
    pub fn buffer(&self) -> &ExecutionBuffer {
        &self.buffer
    }

    /// Total real plan executions so far.
    pub fn plans_executed(&self) -> u64 {
        self.executor.executions()
    }

    fn original_plan(&mut self, query: &Query) -> Result<PhysicalPlan> {
        if let Some(p) = self.originals.get(&query.id) {
            return Ok(p.clone());
        }
        let p = self.optimizer.optimize(query)?;
        self.originals.insert(query.id, p.clone());
        Ok(p)
    }

    /// Phase 1: seed the execution buffer with real episodes and train the
    /// initial AAM. `episodes_per_query` real episodes are run per query.
    pub fn bootstrap(
        &mut self,
        queries: &[Query],
        episodes_per_query: usize,
    ) -> Result<TrainReport> {
        let mut agents = std::mem::take(&mut self.agents);
        let mut result = Ok(());
        'outer: for query in queries {
            let original = match self.original_plan(query) {
                Ok(p) => p,
                Err(e) => {
                    result = Err(e);
                    break 'outer;
                }
            };
            for e in 0..episodes_per_query {
                let n_agents = agents.len();
                let agent = &mut agents[e % n_agents];
                let mut env = RealEnv::new(
                    &self.executor,
                    &mut self.buffer,
                    self.scale.clone(),
                    self.cfg.timeout_factor,
                );
                if let Err(e) = run_episode(
                    agent,
                    &self.optimizer,
                    &self.encoder,
                    &self.space,
                    query,
                    &original,
                    &mut env,
                    &self.cfg,
                    false,
                ) {
                    result = Err(e);
                    break 'outer;
                }
            }
        }
        self.agents = agents;
        result?;
        let (loss, acc) = self.retrain_aam();
        Ok(TrainReport {
            iteration: 0,
            aam_loss: loss,
            aam_accuracy: acc,
            mean_reward: 0.0,
            plans_executed: self.executor.executions(),
            buffer_plans: self.buffer.total_plans(),
        })
    }

    fn retrain_aam(&mut self) -> (f32, f32) {
        let pairs = self.buffer.training_pairs(&self.scale, 200, &mut self.rng);
        if pairs.is_empty() {
            return (0.0, 0.0);
        }
        let mut loss = 0.0;
        for _ in 0..self.cfg.aam_epochs {
            loss = self.aam.train_epoch(&pairs, &mut self.rng);
        }
        (loss, self.aam.accuracy(&pairs))
    }

    /// Phase 2: one training iteration (agent updates + validation + AAM
    /// retraining). `queries` is the training workload.
    pub fn train_iteration(&mut self, queries: &[Query], iteration: usize) -> Result<TrainReport> {
        if queries.is_empty() {
            return Err(FossError::InvalidQuery("empty training workload".into()));
        }
        let episodes_per_agent = (self.cfg.episodes_per_update / self.agents.len().max(1)).max(1);
        let mut mean_reward = 0.0f32;
        let mut episodes_run = 0usize;
        // Promising plans flagged during simulated interaction, deduped.
        let mut promising: Vec<(usize, PlanCtx)> = Vec::new();
        let mut promising_seen: FxHashSet<(QueryId, u64)> = FxHashSet::default();

        if self.cfg.use_simulated_env {
            // Simulated episodes only read the AAM and the buffer, so the
            // agents run in parallel — one episode runner per agent, each
            // with its own query-selection RNG split from the experiment
            // seed by (iteration, agent). The split (rather than sharing
            // `self.rng`) is what makes the schedule independent of thread
            // interleaving: results are identical at any worker count.
            for query in queries {
                self.original_plan(query)?;
            }
            let mut agents = std::mem::take(&mut self.agents);
            let stream = foss_common::SeedStream::new(self.cfg.seed).substream("episode-queries");
            let (aam, buffer, scale, cfg) = (&self.aam, &self.buffer, &self.scale, &self.cfg);
            let (encoder, space, originals) = (&self.encoder, &self.space, &self.originals);
            let optimizer: &TraditionalOptimizer = &self.optimizer;
            let num_agents = agents.len() as u64;
            let outcomes: Vec<Result<AgentRun>> = std::thread::scope(|scope| {
                let handles: Vec<_> = agents
                    .iter_mut()
                    .enumerate()
                    .map(|(a, agent)| {
                        let seed = stream
                            .derive_indexed("agent", iteration as u64 * num_agents + a as u64);
                        scope.spawn(move || -> Result<AgentRun> {
                            let mut rng = StdRng::seed_from_u64(seed);
                            // Concurrency-safe collection point: episodes
                            // push whole trajectories atomically, so the
                            // GAE pass sees them unreordered.
                            let rollout = SharedRolloutBuffer::new();
                            let mut run = AgentRun::default();
                            for _ in 0..episodes_per_agent {
                                let qidx = rng.random_range(0..queries.len());
                                let query = &queries[qidx];
                                let original = originals
                                    .get(&query.id)
                                    .expect("originals pre-resolved above")
                                    .clone();
                                let mut env = SimEnv::new(aam, buffer, scale.clone());
                                let res = run_episode(
                                    agent, optimizer, encoder, space, query, &original, &mut env,
                                    cfg, false,
                                )?;
                                run.reward_sum += res.total_reward;
                                run.episodes += 1;
                                // AAM-estimated improvements are validation
                                // candidates (deduped at the merge).
                                if res.best.icp.fingerprint() != res.original.icp.fingerprint() {
                                    run.promising.push((qidx, res.best.clone()));
                                }
                                rollout.push_episode(res.transitions);
                            }
                            let batch = rollout.into_inner().finish(agent.gamma(), agent.lambda());
                            agent.update(&batch);
                            Ok(run)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("episode runner panicked"))
                    .collect()
            });
            self.agents = agents;
            // Merge in agent order so rewards and the promising list are
            // deterministic regardless of which thread finished first.
            for outcome in outcomes {
                let run = outcome?;
                mean_reward += run.reward_sum;
                episodes_run += run.episodes;
                for (qidx, ctx) in run.promising {
                    if promising_seen.insert((queries[qidx].id, ctx.icp.fingerprint())) {
                        promising.push((qidx, ctx));
                    }
                }
            }
        } else {
            // Real-environment episodes append to the execution buffer and
            // must stay sequential (the buffer is the training ground truth
            // and its insertion order feeds AAM pair sampling).
            let mut agents = std::mem::take(&mut self.agents);
            let result = (|| -> Result<()> {
                for agent in agents.iter_mut() {
                    let rollout = SharedRolloutBuffer::new();
                    for _ in 0..episodes_per_agent {
                        let qidx = self.rng.random_range(0..queries.len());
                        let query = &queries[qidx];
                        let original = self.original_plan(query)?;
                        let mut env = RealEnv::new(
                            &self.executor,
                            &mut self.buffer,
                            self.scale.clone(),
                            self.cfg.timeout_factor,
                        );
                        let res = run_episode(
                            agent,
                            &self.optimizer,
                            &self.encoder,
                            &self.space,
                            query,
                            &original,
                            &mut env,
                            &self.cfg,
                            false,
                        )?;
                        mean_reward += res.total_reward;
                        episodes_run += 1;
                        rollout.push_episode(res.transitions);
                    }
                    let batch = rollout.into_inner().finish(agent.gamma(), agent.lambda());
                    agent.update(&batch);
                }
                Ok(())
            })();
            self.agents = agents;
            result?;
        }

        // Promising-plan validation (§V-B / Table II "Off-Validation").
        if self.cfg.validate_promising {
            promising.truncate(self.cfg.promising_per_update);
            for (qidx, ctx) in promising {
                let query = &queries[qidx];
                self.execute_and_record(query, &ctx)?;
            }
        }
        // Random candidate sampling for extra AAM data.
        for _ in 0..self.cfg.random_validation_per_update {
            let qidx = self.rng.random_range(0..queries.len());
            let query = queries[qidx].clone();
            let original = self.original_plan(&query)?;
            let mut agents = std::mem::take(&mut self.agents);
            let agent_idx = self.rng.random_range(0..agents.len());
            let res = {
                let mut env = SimEnv::new(&self.aam, &self.buffer, self.scale.clone());
                run_episode(
                    &mut agents[agent_idx],
                    &self.optimizer,
                    &self.encoder,
                    &self.space,
                    &query,
                    &original,
                    &mut env,
                    &self.cfg,
                    false,
                )
            };
            self.agents = agents;
            for ctx in res?.visited {
                self.execute_and_record(&query, &ctx)?;
            }
        }

        let (loss, acc) = self.retrain_aam();
        Ok(TrainReport {
            iteration,
            aam_loss: loss,
            aam_accuracy: acc,
            mean_reward: mean_reward / episodes_run.max(1) as f32,
            plans_executed: self.executor.executions(),
            buffer_plans: self.buffer.total_plans(),
        })
    }

    /// Execute `ctx` for real under the dynamic timeout and store the result.
    fn execute_and_record(&mut self, query: &Query, ctx: &PlanCtx) -> Result<()> {
        // Ensure the original is measured (budget anchor).
        if self.buffer.original(query.id).is_none() {
            let original = self.original_plan(query)?;
            let out = self.executor.execute(query, &original, None)?;
            let icp = original.extract_icp()?;
            let encoded = self.encoder.encode(query, &original, 0.0);
            self.buffer.record_original(
                query.id,
                ExecutedPlan {
                    icp,
                    plan: original,
                    encoded,
                    latency: out.latency,
                    timed_out: false,
                },
            );
        }
        if self.buffer.contains(query.id, &ctx.icp) {
            return Ok(());
        }
        let budget = self
            .buffer
            .original(query.id)
            .map(|o| o.latency)
            .unwrap_or(f64::INFINITY)
            * self.cfg.timeout_factor;
        let (latency, timed_out) = match self.executor.execute(query, &ctx.plan, Some(budget)) {
            Ok(out) => (out.latency, false),
            Err(FossError::Timeout { .. }) => (budget, true),
            Err(e) => return Err(e),
        };
        self.buffer.record(
            query.id,
            ExecutedPlan {
                icp: ctx.icp.clone(),
                plan: ctx.plan.clone(),
                encoded: ctx.encoded.clone(),
                latency,
                timed_out,
            },
        );
        Ok(())
    }

    /// Full training: bootstrap once, then `iterations` update rounds.
    pub fn train(&mut self, queries: &[Query], iterations: usize) -> Result<Vec<TrainReport>> {
        let mut reports = Vec::with_capacity(iterations + 1);
        if self.buffer.total_plans() == 0 {
            reports.push(self.bootstrap(queries, 1)?);
        }
        for i in 1..=iterations {
            reports.push(self.train_iteration(queries, i)?);
        }
        Ok(reports)
    }

    /// Inference: repair `query`'s expert plan and select with the AAM.
    ///
    /// Read-only: the training state is untouched, so inference can run
    /// between (or concurrently with readers of) training rounds. For
    /// serving across threads, publish a [`PlannerSnapshot`] instead.
    pub fn optimize(&self, query: &Query) -> Result<PhysicalPlan> {
        Ok(self.optimize_detailed(query)?.plan)
    }

    /// Inference with provenance (selected step, candidate count, AAM
    /// confidence). Same read-only pipeline as
    /// [`PlannerSnapshot::optimize_detailed`] — plans are bit-identical.
    pub fn optimize_detailed(&self, query: &Query) -> Result<Inference> {
        let original = match self.originals.get(&query.id) {
            Some(p) => p.clone(),
            None => self.optimizer.optimize(query)?,
        };
        let policies: Vec<&dyn crate::agent::PlanPolicy> = self
            .agents
            .iter()
            .map(|a| a as &dyn crate::agent::PlanPolicy)
            .collect();
        crate::snapshot::infer(
            &policies,
            &self.aam,
            &self.buffer,
            &self.scale,
            &self.optimizer,
            &self.encoder,
            &self.space,
            &self.cfg,
            query,
            &original,
        )
    }

    /// Freeze the current planner into an immutable [`PlannerSnapshot`]
    /// (frozen agent policies + AAM weights + execution-buffer view behind
    /// `Arc`s). The snapshot is a deep copy: subsequent training rounds do
    /// not affect plans served from it. Publish through a
    /// [`crate::snapshot::SnapshotCell`] for hot model swaps.
    pub fn snapshot(&self) -> PlannerSnapshot {
        PlannerSnapshot::new(
            self.cfg.clone(),
            self.scale.clone(),
            self.optimizer.clone(),
            Arc::new(self.encoder.clone()),
            Arc::new(self.space),
            Arc::new(self.agents.iter().map(|a| a.freeze()).collect()),
            Arc::new(self.aam.clone()),
            Arc::new(self.buffer.clone()),
            Arc::new(self.originals.clone()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envs::tests_support::TestWorld;

    fn foss_over(world: &TestWorld, cfg: FossConfig) -> Foss {
        let executor = Arc::new(CachingExecutor::new(
            world.db.clone(),
            *world.opt.cost_model(),
        ));
        Foss::new(
            Arc::new(world.opt.clone()),
            executor,
            3,
            world.db.stats().iter().map(|s| s.row_count).collect(),
            cfg,
        )
    }

    #[test]
    fn bootstrap_fills_buffer_and_trains_aam() {
        let world = TestWorld::new(5);
        let mut foss = foss_over(
            &world,
            FossConfig {
                episodes_per_update: 8,
                ..FossConfig::tiny()
            },
        );
        let report = foss
            .bootstrap(std::slice::from_ref(&world.query), 2)
            .unwrap();
        assert!(
            report.buffer_plans >= 2,
            "buffer has {}",
            report.buffer_plans
        );
        assert!(report.plans_executed >= 2);
        assert!(foss.buffer().original(world.query.id).is_some());
    }

    #[test]
    fn train_iteration_grows_buffer_and_reports() {
        let world = TestWorld::new(6);
        let cfg = FossConfig {
            episodes_per_update: 6,
            promising_per_update: 4,
            random_validation_per_update: 1,
            ..FossConfig::tiny()
        };
        let mut foss = foss_over(&world, cfg);
        let queries = vec![world.query.clone()];
        foss.bootstrap(&queries, 1).unwrap();
        let before = foss.buffer().total_plans();
        let report = foss.train_iteration(&queries, 1).unwrap();
        assert_eq!(report.iteration, 1);
        assert!(report.buffer_plans >= before);
        assert!(report.aam_accuracy >= 0.0);
    }

    #[test]
    fn optimize_returns_a_runnable_plan() {
        let world = TestWorld::new(7);
        let cfg = FossConfig {
            episodes_per_update: 6,
            ..FossConfig::tiny()
        };
        let mut foss = foss_over(&world, cfg);
        foss.train(std::slice::from_ref(&world.query), 1).unwrap();
        let inf = foss.optimize_detailed(&world.query).unwrap();
        assert!(inf.selected_step <= foss.config().max_steps);
        // The plan must execute and give the correct result cardinality.
        let exec = CachingExecutor::new(world.db.clone(), *world.opt.cost_model());
        let chosen = exec.execute(&world.query, &inf.plan, None).unwrap();
        let orig = exec.execute(&world.query, &world.original, None).unwrap();
        assert_eq!(chosen.rows, orig.rows, "FOSS must preserve query semantics");
    }

    #[test]
    fn multi_agent_mode_runs() {
        let world = TestWorld::new(8);
        let cfg = FossConfig {
            num_agents: 2,
            episodes_per_update: 4,
            ..FossConfig::tiny()
        };
        let mut foss = foss_over(&world, cfg);
        foss.train(std::slice::from_ref(&world.query), 1).unwrap();
        let inf = foss.optimize_detailed(&world.query).unwrap();
        assert_eq!(inf.candidates, 2 * 4);
    }

    #[test]
    fn off_simulated_mode_uses_real_rewards() {
        let world = TestWorld::new(9);
        let cfg = FossConfig {
            use_simulated_env: false,
            episodes_per_update: 4,
            random_validation_per_update: 0,
            ..FossConfig::tiny()
        };
        let mut foss = foss_over(&world, cfg);
        foss.train(std::slice::from_ref(&world.query), 1).unwrap();
        // Real-env episodes execute every distinct candidate plan.
        assert!(foss.plans_executed() >= 4);
    }

    /// Parallel episode runners must not make training order-dependent:
    /// two identically-seeded multi-agent runs (whose per-agent RNGs are
    /// split from the experiment seed, not drawn from a shared stream)
    /// produce bit-identical rewards and the same inference plan.
    #[test]
    fn parallel_episode_runners_are_deterministic() {
        let reports_and_plan = |_: usize| {
            let world = TestWorld::new(11);
            let cfg = FossConfig {
                num_agents: 3,
                episodes_per_update: 6,
                promising_per_update: 4,
                random_validation_per_update: 1,
                ..FossConfig::tiny()
            };
            let mut foss = foss_over(&world, cfg);
            let queries = vec![world.query.clone()];
            let reports = foss.train(&queries, 2).unwrap();
            let rewards: Vec<u32> = reports.iter().map(|r| r.mean_reward.to_bits()).collect();
            let plan = foss.optimize(&world.query).unwrap().fingerprint();
            (rewards, plan, foss.buffer().total_plans())
        };
        assert_eq!(reports_and_plan(0), reports_and_plan(1));
    }

    #[test]
    fn empty_workload_rejected() {
        let world = TestWorld::new(10);
        let mut foss = foss_over(&world, FossConfig::tiny());
        assert!(foss.train_iteration(&[], 1).is_err());
    }
}
