//! Candidate selection (§II): "following the temporal sequence, the AAM
//! serves as the selector, assessing specific pairs of candidate plans and
//! selecting the estimated optimal plan."
//!
//! Implemented as a champion tournament in generation order: the current
//! champion sits in the *left* (reference) slot, each newer candidate in the
//! *right* slot; when the AAM scores the challenger strictly better
//! (score ≥ 1, i.e. it saves more than the `d_1 = 5%` noise floor), the
//! challenger becomes champion.

use crate::aam::AdvantageModel;
use crate::encoding::EncodedPlan;

/// Batched-wave size: how many challengers one `predict_batch` call scores
/// against the current champion. The cap bounds the wasted work when
/// champions change often (an adversarial best-last ordering would otherwise
/// score O(n²) pairs), while a stable champion still sweeps `n/WAVE` batched
/// calls instead of `n−1` singles.
const WAVE: usize = 16;

/// Index of the estimated-best plan among `candidates` (temporal order).
/// Panics on an empty slice — callers always include the original plan.
///
/// Scoring happens in *waves*: one batched forward scores the current
/// champion against the next (up to `WAVE`) challengers, then the
/// tournament advances to the first challenger the AAM rates strictly better
/// (score ≥ 1) and re-batches from there. Scores computed against a
/// dethroned champion are discarded, so the winner is identical to the
/// sequential pairwise tournament.
pub fn select_best(aam: &AdvantageModel, candidates: &[&EncodedPlan]) -> usize {
    assert!(
        !candidates.is_empty(),
        "selector needs at least one candidate"
    );
    let mut champion = 0usize;
    let mut next = 1usize;
    while next < candidates.len() {
        let end = (next + WAVE).min(candidates.len());
        let wave: Vec<(&EncodedPlan, &EncodedPlan)> = candidates[next..end]
            .iter()
            .map(|cand| (candidates[champion], *cand))
            .collect();
        let scores = aam.predict_batch(&wave);
        match scores.iter().position(|&s| s >= 1) {
            Some(offset) => {
                champion = next + offset;
                next = champion + 1;
            }
            None => next = end,
        }
    }
    champion
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FossConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan(tag: usize) -> EncodedPlan {
        EncodedPlan {
            ops: vec![tag % 6, 0],
            tables: vec![0, 1],
            sels: vec![10, tag % 10],
            rows: vec![tag % 20, 1],
            heights: vec![1, 0],
            structures: vec![3, 1],
            reach: vec![vec![true, true], vec![true, true]],
            step: 0.0,
        }
    }

    fn trained_model() -> AdvantageModel {
        // Teach the AAM that op-tag 5 plans beat everything else.
        let mut rng = StdRng::seed_from_u64(31);
        let mut aam = AdvantageModel::new(4, &FossConfig::tiny(), &mut rng);
        let mut samples = Vec::new();
        for other in 0..4usize {
            samples.push((plan(other), plan(5), 2usize));
            samples.push((plan(5), plan(other), 0usize));
            samples.push((plan(other), plan(other), 0usize));
        }
        for _ in 0..60 {
            aam.train_epoch(&samples, &mut rng);
        }
        aam
    }

    #[test]
    fn tournament_finds_the_taught_winner() {
        let aam = trained_model();
        let c0 = plan(0);
        let c1 = plan(2);
        let c2 = plan(5);
        let c3 = plan(1);
        let idx = select_best(&aam, &[&c0, &c1, &c2, &c3]);
        assert_eq!(idx, 2);
    }

    #[test]
    fn wave_batching_matches_sequential_tournament() {
        // The batched waves must reproduce the plain pairwise loop exactly,
        // including champion changes mid-sequence.
        let aam = trained_model();
        // Longer than one wave (16) so the wave-boundary advance is covered.
        let tags = [0, 2, 5, 1, 5, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 5, 3, 0];
        let cands: Vec<EncodedPlan> = tags.iter().map(|&t| plan(t)).collect();
        let refs: Vec<&EncodedPlan> = cands.iter().collect();
        let mut champion = 0usize;
        for i in 1..refs.len() {
            if aam.predict(refs[champion], refs[i]) >= 1 {
                champion = i;
            }
        }
        assert_eq!(select_best(&aam, &refs), champion);
    }

    #[test]
    fn single_candidate_is_selected() {
        let aam = trained_model();
        let only = plan(3);
        assert_eq!(select_best(&aam, &[&only]), 0);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panic() {
        let aam = trained_model();
        let _ = select_best(&aam, &[]);
    }
}
