//! Algorithm 1 — the planner's episode loop.

use foss_common::{FxHashSet, Result};
use foss_optimizer::{Icp, PhysicalPlan, TraditionalOptimizer};
use foss_query::Query;
use foss_rl::Transition;

use crate::actions::{as_swap, ActionSpace};
use crate::agent::{PlanPolicy, PlannerAgent};
use crate::config::FossConfig;
use crate::encoding::{EncodedPlan, PlanEncoder};
use crate::envs::RewardOracle;

/// A plan in all three representations the loop needs.
#[derive(Debug, Clone)]
pub struct PlanCtx {
    /// Incomplete plan (identity for dedup and `minsteps`).
    pub icp: Icp,
    /// Complete physical plan.
    pub plan: PhysicalPlan,
    /// State-network encoding (step-stamped).
    pub encoded: EncodedPlan,
}

/// What one episode produced.
#[derive(Debug, Clone)]
pub struct EpisodeResult {
    /// PPO transitions (`{State, Action, Reward, State'}` of the paper).
    pub transitions: Vec<Transition<EncodedPlan>>,
    /// The unmodified expert plan (`CP_ORI`).
    pub original: PlanCtx,
    /// Candidate plans in temporal order (`CP_1 … CP_maxsteps`).
    pub visited: Vec<PlanCtx>,
    /// The estimated optimal plan (`C̄P` — the episode's output).
    pub best: PlanCtx,
    /// Sum of step rewards (diagnostics).
    pub total_reward: f32,
}

/// Run one episode of Algorithm 1 for `query`, starting from `original`.
///
/// `greedy` switches the agent from sampling (training) to argmax
/// (inference). The oracle decides whether rewards come from real execution
/// or from the AAM — the loop itself is identical, which is exactly the
/// Dyna property the paper exploits.
#[allow(clippy::too_many_arguments)]
pub fn run_episode(
    agent: &mut PlannerAgent,
    optimizer: &TraditionalOptimizer,
    encoder: &PlanEncoder,
    space: &ActionSpace,
    query: &Query,
    original: &PhysicalPlan,
    oracle: &mut dyn RewardOracle,
    cfg: &FossConfig,
    greedy: bool,
) -> Result<EpisodeResult> {
    if greedy {
        return run_episode_greedy(
            agent, optimizer, encoder, space, query, original, oracle, cfg,
        );
    }
    let mut choose = |state: &EncodedPlan, mask: &[bool]| agent.act(state, mask);
    run_episode_core(
        &mut choose,
        optimizer,
        encoder,
        space,
        query,
        original,
        oracle,
        cfg,
    )
}

/// The read-only inference episode: greedy actions from a [`PlanPolicy`]
/// (a live agent or a frozen snapshot policy), `&self` all the way down —
/// many threads can run this concurrently over one set of weights.
#[allow(clippy::too_many_arguments)]
pub fn run_episode_greedy(
    policy: &dyn PlanPolicy,
    optimizer: &TraditionalOptimizer,
    encoder: &PlanEncoder,
    space: &ActionSpace,
    query: &Query,
    original: &PhysicalPlan,
    oracle: &mut dyn RewardOracle,
    cfg: &FossConfig,
) -> Result<EpisodeResult> {
    let mut choose =
        |state: &EncodedPlan, mask: &[bool]| (policy.act_greedy(state, mask), 0.0, 0.0);
    run_episode_core(
        &mut choose,
        optimizer,
        encoder,
        space,
        query,
        original,
        oracle,
        cfg,
    )
}

/// Per-step decision function: `(state, mask) -> (action, logp, value)` —
/// sampling during training, argmax during inference.
type ChooseFn<'a> = &'a mut dyn FnMut(&EncodedPlan, &[bool]) -> (usize, f32, f32);

/// The shared episode loop over a [`ChooseFn`].
#[allow(clippy::too_many_arguments)]
fn run_episode_core(
    choose: ChooseFn<'_>,
    optimizer: &TraditionalOptimizer,
    encoder: &PlanEncoder,
    space: &ActionSpace,
    query: &Query,
    original: &PhysicalPlan,
    oracle: &mut dyn RewardOracle,
    cfg: &FossConfig,
) -> Result<EpisodeResult> {
    let icp0 = original.extract_icp()?;
    let original_ctx = PlanCtx {
        icp: icp0.clone(),
        plan: original.clone(),
        encoded: encoder.encode(query, original, 0.0),
    };
    oracle.prepare(query, &original_ctx)?;

    let scale = crate::advantage::AdvantageScale::new(cfg.adv_points.clone());
    let l = scale.l() as f64;
    let max_steps = cfg.max_steps;
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    seen.insert(icp0.fingerprint());

    let mut ctx_prev = original_ctx.clone();
    let mut best = original_ctx.clone();
    let mut visited = Vec::with_capacity(max_steps);
    let mut transitions = Vec::with_capacity(max_steps);
    let mut last_swap = None;
    let mut total_reward = 0.0f32;

    for t in 1..=max_steps {
        let mask = space.mask(query, &ctx_prev.icp, last_swap);
        debug_assert!(mask.iter().any(|&m| m), "no legal action at step {t}");
        let state = ctx_prev.encoded.clone();
        let (a, logp, value) = choose(&state, &mask);
        let action = space.decode(a);
        let mut icp_t = ctx_prev.icp.clone();
        space.apply(action, &mut icp_t)?;
        let plan_t = optimizer.optimize_with_hint(query, &icp_t)?;
        let encoded_t = encoder.encode(query, &plan_t, t as f32 / max_steps as f32);
        let ctx_t = PlanCtx {
            icp: icp_t,
            plan: plan_t,
            encoded: encoded_t,
        };

        // Penalty (Eq. 3): γ · (minsteps(ICP_t) − t) ≤ 0.
        let minsteps = ctx_t.icp.min_steps_from(&icp0);
        let mut reward = cfg.penalty_gamma * (minsteps as f64 - t as f64);

        // Advantage of the new plan over the current estimated optimum;
        // reused for the step bounty and the line-21 update.
        let adv_vs_best = oracle.advantage(query, &best, &ctx_t);

        if seen.insert(ctx_t.icp.fingerprint()) {
            // Step bounty pb_t = Adv(C̄P_{t−1}, CP_t).
            let mut bounty = adv_vs_best as f64;
            if t == max_steps {
                // Episode bounty on the final output plan C̄P.
                let final_best = if adv_vs_best > 0 { &ctx_t } else { &best };
                let refs = oracle.references(query);
                if !refs.is_empty() {
                    let mut eb = 0.0f64;
                    let mut prev_refb = 1.0f64; // refb_0
                    for (ref_ctx, refb) in &refs {
                        let adv_i = oracle.advantage(query, ref_ctx, final_best);
                        eb += (scale.d_hat(adv_i) + adv_i as f64 / l) * (prev_refb - refb);
                        prev_refb = *refb;
                    }
                    bounty += cfg.eta * eb;
                }
            }
            reward += bounty;
        }

        if adv_vs_best > 0 {
            best = ctx_t.clone();
        }

        total_reward += reward as f32;
        transitions.push(Transition {
            state,
            mask,
            action: a,
            reward: reward as f32,
            done: t == max_steps,
            value,
            logp,
        });
        last_swap = as_swap(action);
        visited.push(ctx_t.clone());
        ctx_prev = ctx_t;
    }

    Ok(EpisodeResult {
        transitions,
        original: original_ctx,
        visited,
        best,
        total_reward,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envs::tests_support::{LatencyOracle, TestWorld};

    #[test]
    fn episode_produces_maxsteps_transitions() {
        let mut world = TestWorld::new(3);
        let cfg = FossConfig {
            max_steps: 3,
            ..FossConfig::tiny()
        };
        let mut oracle = LatencyOracle::new(&world.db, &world.opt, &world.encoder);
        let res = run_episode(
            &mut world.agent,
            &world.opt,
            &world.encoder,
            &world.space,
            &world.query,
            &world.original,
            &mut oracle,
            &cfg,
            false,
        )
        .unwrap();
        assert_eq!(res.transitions.len(), 3);
        assert_eq!(res.visited.len(), 3);
        assert!(res.transitions[2].done);
        assert!(!res.transitions[0].done);
        // Step encodings advance.
        assert!(res.visited[0].encoded.step < res.visited[2].encoded.step);
    }

    #[test]
    fn revisiting_an_icp_earns_no_bounty() {
        // With maxsteps = 2 and an agent forced through override + inverse
        // override... easier: run many episodes and assert rewards for
        // duplicate states are penalty-only. We test the invariant that any
        // step whose ICP equals the original gets reward ≤ 0 (no bounty:
        // fingerprint was pre-seeded).
        let mut world = TestWorld::new(3);
        let cfg = FossConfig {
            max_steps: 3,
            ..FossConfig::tiny()
        };
        for _ in 0..10 {
            let mut oracle = LatencyOracle::new(&world.db, &world.opt, &world.encoder);
            let res = run_episode(
                &mut world.agent,
                &world.opt,
                &world.encoder,
                &world.space,
                &world.query,
                &world.original,
                &mut oracle,
                &cfg,
                false,
            )
            .unwrap();
            let icp0 = world.original.extract_icp().unwrap();
            for (t, ctx) in res.visited.iter().enumerate() {
                if ctx.icp == icp0 {
                    assert!(
                        res.transitions[t].reward <= 0.0,
                        "repeat of the original ICP must not earn bounty"
                    );
                }
            }
        }
    }

    #[test]
    fn penalty_is_zero_on_minimal_paths() {
        // First step is always minimal (minsteps == 1 == t) unless the agent
        // picked a same-as-original mutation (masked out), so the first
        // transition's reward is ≥ 0 whenever its plan is new.
        let mut world = TestWorld::new(3);
        let cfg = FossConfig {
            max_steps: 2,
            ..FossConfig::tiny()
        };
        let mut oracle = LatencyOracle::new(&world.db, &world.opt, &world.encoder);
        let res = run_episode(
            &mut world.agent,
            &world.opt,
            &world.encoder,
            &world.space,
            &world.query,
            &world.original,
            &mut oracle,
            &cfg,
            false,
        )
        .unwrap();
        assert!(
            res.transitions[0].reward >= 0.0,
            "step 1 cannot be penalised: {}",
            res.transitions[0].reward
        );
    }

    #[test]
    fn greedy_mode_is_deterministic() {
        let mut world = TestWorld::new(3);
        let cfg = FossConfig {
            max_steps: 3,
            ..FossConfig::tiny()
        };
        let run = |world: &mut TestWorld| {
            let mut oracle = LatencyOracle::new(&world.db, &world.opt, &world.encoder);
            let res = run_episode(
                &mut world.agent,
                &world.opt,
                &world.encoder,
                &world.space,
                &world.query,
                &world.original,
                &mut oracle,
                &cfg,
                true,
            )
            .unwrap();
            res.visited
                .iter()
                .map(|c| c.icp.fingerprint())
                .collect::<Vec<_>>()
        };
        let a = run(&mut world);
        let b = run(&mut world);
        assert_eq!(a, b);
    }

    #[test]
    fn best_plan_never_worse_than_original_under_true_latency() {
        // With a latency oracle the estimated optimum is exact, so `best`
        // must have latency ≤ original.
        let mut world = TestWorld::new(3);
        let cfg = FossConfig {
            max_steps: 3,
            ..FossConfig::tiny()
        };
        let mut oracle = LatencyOracle::new(&world.db, &world.opt, &world.encoder);
        let res = run_episode(
            &mut world.agent,
            &world.opt,
            &world.encoder,
            &world.space,
            &world.query,
            &world.original,
            &mut oracle,
            &cfg,
            false,
        )
        .unwrap();
        let lat_best = oracle.true_latency(&world.query, &res.best.plan);
        let lat_orig = oracle.true_latency(&world.query, &world.original);
        assert!(
            lat_best <= lat_orig * 1.05 + 1.0,
            "best ({lat_best}) worse than original ({lat_orig})"
        );
    }
}
