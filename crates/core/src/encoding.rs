//! Plan encoding (§IV-A) — QueryFormer-style node features plus the two
//! structural features the paper adds, and the reachability attention mask.
//!
//! Per plan node we extract categorical features (embedded separately by the
//! state network):
//!
//! * **operator** — seq scan / index scan / hash / merge / nested loop /
//!   index nested loop;
//! * **table** — base table id for scans (a shared "none" id for joins);
//! * **selectivity bucket** — how much the scan's predicates filter its
//!   table (the paper encodes predicate features; on our workloads predicate
//!   effect is fully captured by filter selectivity);
//! * **cardinality bucket** — `log2` of the optimizer's estimated rows;
//! * **height** — longest downward path to a leaf;
//! * **structure type** — left / right / no-siblings / root (labels 0–3).
//!
//! The attention mask only lets *mutually reachable* nodes (ancestor /
//! descendant pairs) attend to each other, replacing QueryFormer's
//! height-difference bias exactly as §IV-A argues.

use foss_optimizer::{JoinMethod, PhysicalPlan, PlanNode};
use foss_query::Query;
use serde::{Deserialize, Serialize};

/// Operator vocabulary size (see `op_code`).
pub const OP_VOCAB: usize = 6;
/// Selectivity-bucket vocabulary: 0..=9 for scans, 10 = join node.
pub const SEL_VOCAB: usize = 11;
/// Cardinality bucket vocabulary (log2-rows, clamped).
pub const ROWS_VOCAB: usize = 30;
/// Height vocabulary (clamped).
pub const HEIGHT_VOCAB: usize = 32;
/// Structure-type vocabulary: left, right, no-siblings, root.
pub const STRUCT_VOCAB: usize = 4;

/// One plan, encoded for the state network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedPlan {
    /// Operator code per node.
    pub ops: Vec<usize>,
    /// Table id (+1; 0 = none) per node.
    pub tables: Vec<usize>,
    /// Selectivity bucket per node.
    pub sels: Vec<usize>,
    /// log2-cardinality bucket per node.
    pub rows: Vec<usize>,
    /// Height per node.
    pub heights: Vec<usize>,
    /// Structure type per node.
    pub structures: Vec<usize>,
    /// Reachability matrix (`true` = may attend).
    pub reach: Vec<Vec<bool>>,
    /// The paper's `Step(t) = t / maxsteps`.
    pub step: f32,
}

impl EncodedPlan {
    /// Number of encoded nodes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the plan has no nodes (never produced by the encoder).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Encodes physical plans against a fixed schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanEncoder {
    /// Number of base tables in the schema (embedding vocabulary is +1).
    pub table_count: usize,
    table_rows: Vec<u64>,
}

/// Stable operator code for a node.
fn op_code(node: &PlanNode) -> usize {
    match node {
        PlanNode::Scan { access, .. } => match access {
            foss_optimizer::AccessPath::SeqScan => 0,
            foss_optimizer::AccessPath::IndexScan { .. } => 1,
        },
        PlanNode::Join {
            method, index_nl, ..
        } => match (method, index_nl) {
            (JoinMethod::Hash, _) => 2,
            (JoinMethod::Merge, _) => 3,
            (JoinMethod::NestLoop, false) => 4,
            (JoinMethod::NestLoop, true) => 5,
        },
    }
}

impl PlanEncoder {
    /// Build an encoder; `table_rows[t]` is the row count of table `t`
    /// (used to bucket scan selectivities).
    pub fn new(table_count: usize, table_rows: Vec<u64>) -> Self {
        assert_eq!(table_count, table_rows.len());
        Self {
            table_count,
            table_rows,
        }
    }

    /// Table-id embedding vocabulary (`table_count + 1` for "none").
    pub fn table_vocab(&self) -> usize {
        self.table_count + 1
    }

    /// Encode `plan` at normalised step `step` (`t / maxsteps`).
    pub fn encode(&self, query: &Query, plan: &PhysicalPlan, step: f32) -> EncodedPlan {
        // Pre-order walk with parent tracking.
        let mut ops = Vec::new();
        let mut tables = Vec::new();
        let mut sels = Vec::new();
        let mut rows = Vec::new();
        let mut heights = Vec::new();
        let mut structures = Vec::new();
        let mut parents: Vec<Option<usize>> = Vec::new();

        // `pending` carries (node, parent index, structure label).
        let root_structure = match plan.root {
            PlanNode::Scan { .. } => 2, // single node: no siblings
            PlanNode::Join { .. } => 3, // root
        };
        let mut stack: Vec<(&PlanNode, Option<usize>, usize)> =
            vec![(&plan.root, None, root_structure)];
        while let Some((node, parent, structure)) = stack.pop() {
            let idx = ops.len();
            ops.push(op_code(node));
            heights.push(node.height().min(HEIGHT_VOCAB - 1));
            structures.push(structure);
            parents.push(parent);
            let est = node.est_rows().max(1.0);
            rows.push((est.log2().round() as usize).min(ROWS_VOCAB - 1));
            match node {
                PlanNode::Scan {
                    relation, est_rows, ..
                } => {
                    let table = query.relations[*relation].table.index();
                    tables.push(table + 1);
                    let total = self.table_rows[table].max(1) as f64;
                    let sel = (est_rows / total).clamp(1e-9, 1.0);
                    // Bucket by halvings: sel 1.0 → 0, 0.5 → 1, … clamped at 9.
                    let bucket = (-sel.log2()).floor().max(0.0) as usize;
                    sels.push(bucket.min(9));
                }
                PlanNode::Join { left, right, .. } => {
                    tables.push(0);
                    sels.push(10);
                    stack.push((right, Some(idx), 1));
                    stack.push((left, Some(idx), 0));
                }
            }
        }

        // Reachability: ancestor/descendant closure (nodes always reach
        // themselves).
        let n = ops.len();
        let mut reach = vec![vec![false; n]; n];
        for (i, first_parent) in parents.iter().enumerate() {
            reach[i][i] = true;
            let mut next = *first_parent;
            while let Some(p) = next {
                reach[i][p] = true;
                reach[p][i] = true;
                next = parents[p];
            }
        }

        EncodedPlan {
            ops,
            tables,
            sels,
            rows,
            heights,
            structures,
            reach,
            step,
        }
    }
}

impl foss_common::Codec for EncodedPlan {
    fn encode(&self, w: &mut foss_common::ByteWriter) {
        self.ops.encode(w);
        self.tables.encode(w);
        self.sels.encode(w);
        self.rows.encode(w);
        self.heights.encode(w);
        self.structures.encode(w);
        self.reach.encode(w);
        w.put_f32(self.step);
    }
    fn decode(r: &mut foss_common::ByteReader<'_>) -> foss_common::Result<Self> {
        Ok(Self {
            ops: Vec::decode(r)?,
            tables: Vec::decode(r)?,
            sels: Vec::decode(r)?,
            rows: Vec::decode(r)?,
            heights: Vec::decode(r)?,
            structures: Vec::decode(r)?,
            reach: Vec::decode(r)?,
            step: r.get_f32()?,
        })
    }
}

impl foss_common::Codec for PlanEncoder {
    fn encode(&self, w: &mut foss_common::ByteWriter) {
        w.put_usize(self.table_count);
        self.table_rows.encode(w);
    }
    fn decode(r: &mut foss_common::ByteReader<'_>) -> foss_common::Result<Self> {
        let table_count = r.get_usize()?;
        let table_rows: Vec<u64> = Vec::decode(r)?;
        if table_rows.len() != table_count {
            return Err(foss_common::FossError::Serde(format!(
                "plan encoder table_rows has {} entries for {table_count} tables",
                table_rows.len()
            )));
        }
        Ok(Self {
            table_count,
            table_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_catalog::{ColumnDef, Schema, TableDef, TableStats};
    use foss_common::QueryId;
    use foss_optimizer::{CardinalityEstimator, CostModel, Icp, TraditionalOptimizer};
    use foss_query::{Predicate, QueryBuilder};
    use foss_storage::{Column, Table};
    use std::sync::Arc;

    fn setup() -> (TraditionalOptimizer, Query, PlanEncoder) {
        let mut schema = Schema::new();
        let mut stats = Vec::new();
        let mut rows_vec = Vec::new();
        for (name, rows) in [("a", 64usize), ("b", 1024), ("c", 256)] {
            schema
                .add_table(TableDef {
                    name: name.into(),
                    columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("fk")],
                })
                .unwrap();
            let ids: Vec<i64> = (0..rows as i64).collect();
            let fks: Vec<i64> = (0..rows as i64).map(|i| i % 64).collect();
            let t = Table::new(
                name,
                vec![
                    ("id".into(), Column::new(ids)),
                    ("fk".into(), Column::new(fks)),
                ],
            )
            .unwrap();
            stats.push(TableStats::analyze(&t, 16));
            rows_vec.push(rows as u64);
        }
        let schema = Arc::new(schema);
        let opt = TraditionalOptimizer::new(
            schema.clone(),
            CardinalityEstimator::new(stats),
            CostModel::default(),
        );
        let mut qb = QueryBuilder::new(QueryId::new(0), 1);
        let a = qb.relation(schema.table_id("a").unwrap(), "a");
        let b = qb.relation(schema.table_id("b").unwrap(), "b");
        let c = qb.relation(schema.table_id("c").unwrap(), "c");
        qb.join(a, 0, b, 1).join(a, 0, c, 1);
        qb.predicate(
            b,
            Predicate::Range {
                column: 1,
                lo: 0,
                hi: 7,
            },
        );
        let q = qb.build(&schema).unwrap();
        let enc = PlanEncoder::new(3, rows_vec);
        (opt, q, enc)
    }

    #[test]
    fn encodes_all_nodes_with_consistent_shapes() {
        let (opt, q, enc) = setup();
        let plan = opt.optimize(&q).unwrap();
        let e = enc.encode(&q, &plan, 0.5);
        assert_eq!(e.len(), 5); // 3 scans + 2 joins
        assert_eq!(e.tables.len(), 5);
        assert_eq!(e.reach.len(), 5);
        assert!(e.reach.iter().all(|r| r.len() == 5));
        assert_eq!(e.step, 0.5);
        assert!(e.ops.iter().all(|&o| o < OP_VOCAB));
        assert!(e.sels.iter().all(|&s| s < SEL_VOCAB));
        assert!(e.rows.iter().all(|&r| r < ROWS_VOCAB));
        assert!(e.structures.iter().all(|&s| s < STRUCT_VOCAB));
    }

    #[test]
    fn root_and_leaf_structure_labels() {
        let (opt, q, enc) = setup();
        let plan = opt.optimize(&q).unwrap();
        let e = enc.encode(&q, &plan, 0.0);
        // Node 0 is the root (pre-order), labelled 3.
        assert_eq!(e.structures[0], 3);
        assert_eq!(e.heights[0], 2);
        // Exactly two left-children and two right-children below the root.
        let lefts = e.structures.iter().filter(|&&s| s == 0).count();
        let rights = e.structures.iter().filter(|&&s| s == 1).count();
        assert_eq!((lefts, rights), (2, 2));
    }

    #[test]
    fn selectivity_bucket_reflects_filter() {
        let (opt, q, enc) = setup();
        let plan = opt.optimize(&q).unwrap();
        let e = enc.encode(&q, &plan, 0.0);
        // b is filtered to ~1/8 of 1024 rows → bucket ≈ 3; a and c unfiltered
        // → bucket 0; joins → 10.
        let b_table = 2usize; // table id 1 (+1)
        let b_idx = e.tables.iter().position(|&t| t == b_table).unwrap();
        assert!((2..=4).contains(&e.sels[b_idx]), "bucket={}", e.sels[b_idx]);
        for i in 0..e.len() {
            if e.tables[i] == 0 {
                assert_eq!(e.sels[i], 10);
            }
        }
    }

    #[test]
    fn reachability_follows_ancestry() {
        let (opt, q, enc) = setup();
        let plan = opt.optimize(&q).unwrap();
        let e = enc.encode(&q, &plan, 0.0);
        // Root reaches everyone.
        assert!(e.reach[0].iter().all(|&b| b));
        // The two scans under the *bottom* join are both reachable from the
        // bottom join but NOT from each other... actually siblings share no
        // ancestor/descendant path, so reach must be false between them.
        // Find two scan nodes with the same parent height pattern: the two
        // deepest leaves are at indexes with height 0 and structures {0,1}
        // under the bottom join.
        let scans: Vec<usize> = (0..e.len()).filter(|&i| e.tables[i] != 0).collect();
        let mut sibling_pairs = 0;
        for &i in &scans {
            for &j in &scans {
                if i < j && !e.reach[i][j] {
                    sibling_pairs += 1;
                }
            }
        }
        assert!(sibling_pairs > 0, "some scans must be mutually unreachable");
        // Symmetry + self-reach.
        for i in 0..e.len() {
            assert!(e.reach[i][i]);
            for j in 0..e.len() {
                assert_eq!(e.reach[i][j], e.reach[j][i]);
            }
        }
    }

    #[test]
    fn different_icp_encode_differently() {
        let (opt, q, enc) = setup();
        let plan = opt.optimize(&q).unwrap();
        let icp = plan.extract_icp().unwrap();
        let mut other = icp.clone();
        other
            .override_method(1, 1 + (other.methods[0].index() + 1) % 3)
            .unwrap();
        let plan2 = opt.optimize_with_hint(&q, &other).unwrap();
        let e1 = enc.encode(&q, &plan, 0.0);
        let e2 = enc.encode(&q, &plan2, 0.0);
        assert_ne!(e1, e2);
        // Deterministic:
        assert_eq!(e1, enc.encode(&q, &plan, 0.0));
    }

    #[test]
    fn index_nl_gets_distinct_op_code() {
        let (opt, q, enc) = setup();
        let icp = Icp::new(
            vec![1, 0, 2],
            vec![
                foss_optimizer::JoinMethod::NestLoop,
                foss_optimizer::JoinMethod::Hash,
            ],
        )
        .unwrap();
        let plan = opt.optimize_with_hint(&q, &icp).unwrap();
        let e = enc.encode(&q, &plan, 0.0);
        assert!(
            e.ops.contains(&5),
            "expected an index-NL op code in {:?}",
            e.ops
        );
    }
}
