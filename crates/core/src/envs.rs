//! The two environments of the simulated learner (§V).
//!
//! Both share the optimizer as state transitioner (`Γp`, already used inside
//! [`crate::episode::run_episode`]); they differ only in the reward oracle:
//!
//! * [`RealEnv`] executes plans in the DBMS executor under the dynamic
//!   timeout and feeds the execution buffer — expensive, exact;
//! * [`SimEnv`] asks the asymmetric advantage model — cheap, learned.

use foss_common::{FossError, QueryId, Result};
use foss_executor::CachingExecutor;
use foss_query::Query;

use crate::aam::AdvantageModel;
use crate::advantage::AdvantageScale;
use crate::episode::PlanCtx;
use crate::execbuf::{ExecutedPlan, ExecutionBuffer};

/// Reward interface used by the episode loop.
pub trait RewardOracle {
    /// Called once per episode with the original plan (real environments
    /// ensure its latency is measured and recorded).
    fn prepare(&mut self, query: &Query, original: &PlanCtx) -> Result<()>;

    /// Discrete advantage `Adv(left, right)` — how much better `right` is.
    fn advantage(&mut self, query: &Query, left: &PlanCtx, right: &PlanCtx) -> usize;

    /// Episode-bounty reference set `(ref plan, refb_i)`, best first.
    fn references(&mut self, query: &Query) -> Vec<(PlanCtx, f64)>;
}

/// Real environment: rewards from actual execution latency with the paper's
/// dynamic timeout (1.5× the original plan's latency).
pub struct RealEnv<'a> {
    executor: &'a CachingExecutor,
    buffer: &'a mut ExecutionBuffer,
    scale: AdvantageScale,
    timeout_factor: f64,
}

impl<'a> RealEnv<'a> {
    /// Build over a shared executor and the global execution buffer.
    pub fn new(
        executor: &'a CachingExecutor,
        buffer: &'a mut ExecutionBuffer,
        scale: AdvantageScale,
        timeout_factor: f64,
    ) -> Self {
        Self {
            executor,
            buffer,
            scale,
            timeout_factor,
        }
    }

    fn original_latency(&self, qid: QueryId) -> Result<f64> {
        self.buffer
            .original(qid)
            .map(|o| o.latency)
            .ok_or_else(|| FossError::InvalidPlan("original not prepared".into()))
    }

    /// Measure (or recall) the latency of `ctx`, recording it in the buffer.
    /// Timed-out plans are labelled with the budget as their latency.
    pub fn latency_of(&mut self, query: &Query, ctx: &PlanCtx) -> Result<f64> {
        if let Some(p) = self.buffer.get(query.id, &ctx.icp) {
            return Ok(p.latency);
        }
        let budget = self.original_latency(query.id)? * self.timeout_factor;
        let (latency, timed_out) = match self.executor.execute(query, &ctx.plan, Some(budget)) {
            Ok(out) => (out.latency, false),
            Err(FossError::Timeout { .. }) => (budget, true),
            Err(e) => return Err(e),
        };
        self.buffer.record(
            query.id,
            ExecutedPlan {
                icp: ctx.icp.clone(),
                plan: ctx.plan.clone(),
                encoded: ctx.encoded.clone(),
                latency,
                timed_out,
            },
        );
        Ok(latency)
    }
}

impl RewardOracle for RealEnv<'_> {
    fn prepare(&mut self, query: &Query, original: &PlanCtx) -> Result<()> {
        if self.buffer.original(query.id).is_some() {
            return Ok(());
        }
        let out = self.executor.execute(query, &original.plan, None)?;
        self.buffer.record_original(
            query.id,
            ExecutedPlan {
                icp: original.icp.clone(),
                plan: original.plan.clone(),
                encoded: original.encoded.clone(),
                latency: out.latency,
                timed_out: false,
            },
        );
        Ok(())
    }

    fn advantage(&mut self, query: &Query, left: &PlanCtx, right: &PlanCtx) -> usize {
        let ll = self.latency_of(query, left).unwrap_or(f64::INFINITY);
        let lr = self.latency_of(query, right).unwrap_or(f64::INFINITY);
        if !ll.is_finite() || !lr.is_finite() {
            return 0;
        }
        self.scale.score_latencies(ll, lr)
    }

    fn references(&mut self, query: &Query) -> Vec<(PlanCtx, f64)> {
        self.buffer
            .references(query.id, &self.scale)
            .into_iter()
            .map(|(p, refb)| {
                (
                    PlanCtx {
                        icp: p.icp.clone(),
                        plan: p.plan.clone(),
                        encoded: p.encoded.clone(),
                    },
                    refb,
                )
            })
            .collect()
    }
}

/// Simulated environment `Ê(Γp, θadv)`: rewards from the AAM, references
/// from previously executed (real) plans.
pub struct SimEnv<'a> {
    aam: &'a AdvantageModel,
    buffer: &'a ExecutionBuffer,
    scale: AdvantageScale,
}

impl<'a> SimEnv<'a> {
    /// Build over a trained AAM and the (read-only) execution buffer.
    pub fn new(
        aam: &'a AdvantageModel,
        buffer: &'a ExecutionBuffer,
        scale: AdvantageScale,
    ) -> Self {
        Self { aam, buffer, scale }
    }
}

impl RewardOracle for SimEnv<'_> {
    fn prepare(&mut self, _query: &Query, _original: &PlanCtx) -> Result<()> {
        Ok(())
    }

    fn advantage(&mut self, _query: &Query, left: &PlanCtx, right: &PlanCtx) -> usize {
        self.aam.predict(&left.encoded, &right.encoded)
    }

    fn references(&mut self, query: &Query) -> Vec<(PlanCtx, f64)> {
        self.buffer
            .references(query.id, &self.scale)
            .into_iter()
            .map(|(p, refb)| {
                (
                    PlanCtx {
                        icp: p.icp.clone(),
                        plan: p.plan.clone(),
                        encoded: p.encoded.clone(),
                    },
                    refb,
                )
            })
            .collect()
    }
}

/// Shared fixtures for unit tests across the crate (schema, data, agent).
#[doc(hidden)]
pub mod tests_support {
    use super::*;
    use crate::actions::ActionSpace;
    use crate::agent::PlannerAgent;
    use crate::config::FossConfig;
    use crate::encoding::PlanEncoder;
    use foss_catalog::{ColumnDef, Schema, TableDef};
    use foss_executor::Database;
    use foss_optimizer::{CardinalityEstimator, CostModel, PhysicalPlan, TraditionalOptimizer};
    use foss_query::QueryBuilder;
    use foss_storage::{Column, Table};
    use std::sync::Arc;

    /// A tiny but non-trivial world: 3-table chain with size skew so join
    /// order and method genuinely matter.
    pub struct TestWorld {
        pub db: Arc<Database>,
        pub opt: TraditionalOptimizer,
        pub encoder: PlanEncoder,
        pub agent: PlannerAgent,
        pub space: ActionSpace,
        pub query: Query,
        pub original: PhysicalPlan,
    }

    impl TestWorld {
        pub fn new(seed: u64) -> Self {
            let mut schema = Schema::new();
            let sizes = [("a", 80usize), ("b", 4000), ("c", 400)];
            for (name, _) in sizes {
                schema
                    .add_table(TableDef {
                        name: name.into(),
                        columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("fk")],
                    })
                    .unwrap();
            }
            let schema = Arc::new(schema);
            let mut tables = Vec::new();
            for (name, rows) in sizes {
                let ids: Vec<i64> = (0..rows as i64).collect();
                // Skewed fk: many rows point at low ids.
                let fks: Vec<i64> = (0..rows as i64).map(|i| (i * i) % 80).collect();
                tables.push(
                    Table::new(
                        name,
                        vec![
                            ("id".into(), Column::new(ids)),
                            ("fk".into(), Column::new(fks)),
                        ],
                    )
                    .unwrap(),
                );
            }
            let db = Arc::new(Database::new(schema.clone(), tables, 16).unwrap());
            let opt = TraditionalOptimizer::new(
                schema.clone(),
                CardinalityEstimator::new(db.stats_vec()),
                CostModel::default(),
            );
            let mut qb = QueryBuilder::new(foss_common::QueryId::new(0), 1);
            let a = qb.relation(schema.table_id("a").unwrap(), "a");
            let b = qb.relation(schema.table_id("b").unwrap(), "b");
            let c = qb.relation(schema.table_id("c").unwrap(), "c");
            qb.join(a, 0, b, 1).join(a, 0, c, 1);
            let query = qb.build(&schema).unwrap();
            let original = opt.optimize(&query).unwrap();
            let encoder = PlanEncoder::new(3, db.stats().iter().map(|s| s.row_count).collect());
            let space = ActionSpace::new(3);
            let agent = PlannerAgent::new(4, space.len(), &FossConfig::tiny(), seed);
            Self {
                db,
                opt,
                encoder,
                agent,
                space,
                query,
                original,
            }
        }
    }

    /// A reward oracle backed directly by true latencies (no timeout, no
    /// buffer) — useful to test the episode loop in isolation.
    pub struct LatencyOracle<'a> {
        exec: CachingExecutor,
        scale: AdvantageScale,
        _marker: std::marker::PhantomData<&'a ()>,
    }

    impl<'a> LatencyOracle<'a> {
        pub fn new(db: &Arc<Database>, opt: &TraditionalOptimizer, _encoder: &PlanEncoder) -> Self {
            Self {
                exec: CachingExecutor::new(db.clone(), *opt.cost_model()),
                scale: AdvantageScale::paper_default(),
                _marker: std::marker::PhantomData,
            }
        }

        pub fn true_latency(&self, query: &Query, plan: &PhysicalPlan) -> f64 {
            self.exec.execute(query, plan, None).unwrap().latency
        }
    }

    impl RewardOracle for LatencyOracle<'_> {
        fn prepare(&mut self, _query: &Query, _original: &PlanCtx) -> Result<()> {
            Ok(())
        }

        fn advantage(&mut self, query: &Query, left: &PlanCtx, right: &PlanCtx) -> usize {
            let ll = self.true_latency(query, &left.plan);
            let lr = self.true_latency(query, &right.plan);
            self.scale.score_latencies(ll, lr)
        }

        fn references(&mut self, _query: &Query) -> Vec<(PlanCtx, f64)> {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::TestWorld;
    use super::*;
    use crate::encoding::PlanEncoder;
    use foss_optimizer::Icp;

    fn ctx_for(world: &TestWorld, icp: Icp) -> PlanCtx {
        let plan = world.opt.optimize_with_hint(&world.query, &icp).unwrap();
        let encoder = PlanEncoder::new(3, world.db.stats().iter().map(|s| s.row_count).collect());
        let encoded = encoder.encode(&world.query, &plan, 0.5);
        PlanCtx { icp, plan, encoded }
    }

    #[test]
    fn real_env_records_executions() {
        let world = TestWorld::new(1);
        let exec = CachingExecutor::new(world.db.clone(), *world.opt.cost_model());
        let mut buf = ExecutionBuffer::new();
        let mut env = RealEnv::new(&exec, &mut buf, AdvantageScale::paper_default(), 1.5);
        let orig_icp = world.original.extract_icp().unwrap();
        let orig_ctx = ctx_for(&world, orig_icp.clone());
        env.prepare(&world.query, &orig_ctx).unwrap();

        let mut other = orig_icp.clone();
        other.swap(1, 2).unwrap();
        let other_ctx = ctx_for(&world, other);
        let _adv = env.advantage(&world.query, &orig_ctx, &other_ctx);
        assert!(buf.original(world.query.id).is_some());
        assert_eq!(buf.plans(world.query.id).len(), 1);
    }

    #[test]
    fn real_env_timeout_labels_budget() {
        let world = TestWorld::new(2);
        let exec = CachingExecutor::new(world.db.clone(), *world.opt.cost_model());
        let mut buf = ExecutionBuffer::new();
        // Timeout factor so small every alternative times out.
        let mut env = RealEnv::new(&exec, &mut buf, AdvantageScale::paper_default(), 1e-6);
        let orig_icp = world.original.extract_icp().unwrap();
        let orig_ctx = ctx_for(&world, orig_icp.clone());
        env.prepare(&world.query, &orig_ctx).unwrap();
        let mut other = orig_icp.clone();
        other
            .override_method(1, 1 + (other.methods[0].index() + 1) % 3)
            .unwrap();
        let other_ctx = ctx_for(&world, other.clone());
        let lat = env.latency_of(&world.query, &other_ctx).unwrap();
        let orig_lat = buf.original(world.query.id).unwrap().latency;
        assert!((lat - orig_lat * 1e-6).abs() < 1e-9);
        assert!(buf.get(world.query.id, &other).unwrap().timed_out);
    }

    #[test]
    fn sim_env_uses_aam_verdicts() {
        use crate::aam::AdvantageModel;
        use crate::config::FossConfig;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let world = TestWorld::new(3);
        let mut rng = StdRng::seed_from_u64(4);
        let aam = AdvantageModel::new(4, &FossConfig::tiny(), &mut rng);
        let buf = ExecutionBuffer::new();
        let mut env = SimEnv::new(&aam, &buf, AdvantageScale::paper_default());
        let orig_icp = world.original.extract_icp().unwrap();
        let a = ctx_for(&world, orig_icp.clone());
        let mut icp_b = orig_icp;
        icp_b.swap(1, 2).unwrap();
        let b = ctx_for(&world, icp_b);
        let s = env.advantage(&world.query, &a, &b);
        assert!(s < 3);
        assert_eq!(s, aam.predict(&a.encoded, &b.encoded));
        // No references without buffer contents.
        assert!(env.references(&world.query).is_empty());
    }
}
