//! Collection strategies (`prop::collection::vec`).

use rand::rngs::StdRng;

use crate::{SizeRange, Strategy};

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
