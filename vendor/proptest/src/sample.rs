//! Sampling strategies (`prop::sample::subsequence`).

use rand::rngs::StdRng;
use rand::RngExt;

use crate::{SizeRange, Strategy};

/// Strategy producing order-preserving subsequences of `values` whose
/// length is drawn from `size` (clamped to the source length).
pub fn subsequence<T: Clone + std::fmt::Debug>(
    values: Vec<T>,
    size: impl Into<SizeRange>,
) -> Subsequence<T> {
    Subsequence {
        values,
        size: size.into(),
    }
}

#[derive(Debug, Clone)]
pub struct Subsequence<T> {
    values: Vec<T>,
    size: SizeRange,
}

impl<T: Clone + std::fmt::Debug> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.values.len();
        let len = self.size.pick(rng).min(n);
        // Floyd's algorithm: `len` distinct indices, then sort to keep order.
        let mut picked: Vec<usize> = Vec::with_capacity(len);
        for upper in (n - len)..n {
            let cand = rng.random_range(0..=upper);
            if picked.contains(&cand) {
                picked.push(upper);
            } else {
                picked.push(cand);
            }
        }
        picked.sort_unstable();
        picked.into_iter().map(|i| self.values[i].clone()).collect()
    }
}
