//! Vendored property-testing harness exposing the subset of the `proptest`
//! API this workspace uses: the `proptest!` macro with
//! `#![proptest_config(...)]`, `prop_assert!`/`prop_assert_eq!`, numeric
//! range strategies, `prop::collection::vec` and `prop::sample::subsequence`.
//!
//! Differences from the real crate, by design (the build is offline):
//! cases are generated from a per-test deterministic seed (stable across
//! runs and platforms) and failing inputs are *not* shrunk — the failure
//! report instead names the case index, which is reproducible.

use rand::rngs::StdRng;

pub mod collection;
pub mod sample;

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property case. Returned (via `prop_assert!`) rather than
/// panicking so the runner can attach case context before reporting.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type property bodies evaluate to (`return Ok(())` skips a case).
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values for one property argument.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: rand::SampleUniform> Strategy for core::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::RngExt;
        rng.random_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::RngExt;
        rng.random_range(self.clone())
    }
}

/// Inclusive bounds on a generated collection length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub lo: usize,
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    pub fn pick(&self, rng: &mut StdRng) -> usize {
        use rand::RngExt;
        rng.random_range(self.lo..=self.hi)
    }
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::{rngs::StdRng, SeedableRng};

    /// Stable per-test seed: FNV-1a over the test's module path and name,
    /// so adding a test never perturbs another test's cases.
    pub fn seed_for(test_path: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h | 1
    }
}

/// Define property tests. Mirrors `proptest::proptest!` for the supported
/// grammar: an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::__rt::SeedableRng as _;
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng =
                        $crate::__rt::StdRng::seed_from_u64(seed ^ ((case as u64) << 1));
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name),
                            case,
                            config.cases,
                            seed,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a property body; failure aborts only the current case
/// with a report instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// The names tests conventionally glob-import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, SizeRange, Strategy, TestCaseError,
        TestCaseResult,
    };

    /// Namespaced strategy constructors (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_hold(x in 1usize..10, y in -4i64..=4, f in 0.0f64..1.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_hold(v in prop::collection::vec(0usize..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn subsequence_preserves_order(s in prop::sample::subsequence((0..8usize).collect::<Vec<_>>(), 3)) {
            prop_assert_eq!(s.len(), 3);
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn full_length_subsequence_is_identity() {
        use crate::Strategy;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let s = crate::sample::subsequence((0..6usize).collect::<Vec<_>>(), 6);
        assert_eq!(s.generate(&mut rng), (0..6).collect::<Vec<_>>());
    }
}
