//! No-op `Serialize`/`Deserialize` derives for the vendored `serde` stub.
//! The real impls are blanket impls in the `serde` stub crate, so the
//! derives only need to exist (and register the `#[serde(...)]` helper
//! attribute) — they expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
