//! Vendored benchmarking harness exposing the subset of the `criterion` API
//! this workspace uses: `Criterion` with the builder methods
//! `sample_size`/`measurement_time`/`warm_up_time`, `bench_function` with
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Statistics are deliberately simple — per-sample means with a median
//! summary — but timings are real wall-clock measurements, good enough for
//! the coarse perf-trajectory tracking in `BENCH_*.json`. Set the
//! `CRITERION_JSON` environment variable to a path to also write the
//! summary as a JSON array.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// One finished benchmark: name plus per-sample mean iteration times.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub sample_means_ns: Vec<f64>,
}

impl BenchResult {
    /// Median of the per-sample means, in nanoseconds.
    pub fn median_ns(&self) -> f64 {
        let mut v = self.sample_means_ns.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
        if v.is_empty() {
            return 0.0;
        }
        let mid = v.len() / 2;
        if v.len().is_multiple_of(2) {
            (v[mid - 1] + v[mid]) / 2.0
        } else {
            v[mid]
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run the routine until the warm-up budget elapses, and
        // estimate the per-iteration cost to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut bencher);
            warm_iters += bencher.iters;
            bencher.iters = (bencher.iters * 2).min(4096);
        }
        let per_iter = if warm_iters == 0 {
            Duration::from_micros(1)
        } else {
            warm_start.elapsed() / warm_iters.max(1) as u32
        };

        // Measurement: `sample_size` samples sharing the measurement budget.
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample =
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        let mut sample_means_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            sample_means_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        let result = BenchResult {
            name: name.to_string(),
            sample_means_ns,
        };
        println!(
            "{:<32} time: {:>12.1} ns/iter  ({} samples x {} iters)",
            result.name,
            result.median_ns(),
            self.sample_size,
            iters_per_sample
        );
        self.results.push(result);
        self
    }

    /// All results recorded so far (drivers embedding the harness, e.g. the
    /// `probe --out` perf-trajectory tool, read medians from here).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serialise the recorded results as the `BENCH_<tag>.json` array.
    pub fn summary_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"median_ns\": {:.1}}}{}\n",
                r.name.replace('"', "\\\""),
                r.median_ns(),
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push_str("]\n");
        out
    }

    /// Write the `BENCH_<tag>.json` summary to `path`.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.summary_json())
    }

    /// Emit the end-of-run summary (and `CRITERION_JSON` file if requested).
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Err(e) = self.write_json(&path) {
                eprintln!("criterion: failed to write {path}: {e}");
            }
        }
    }
}

/// Timer handle passed to the closure given to `bench_function`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Mirrors `criterion::criterion_group!`: both the simple list form and the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].sample_means_ns.len(), 3);
        assert!(c.results[0].median_ns() >= 0.0);
    }

    #[test]
    fn median_handles_even_and_odd() {
        let even = BenchResult {
            name: "e".into(),
            sample_means_ns: vec![4.0, 1.0, 3.0, 2.0],
        };
        assert!((even.median_ns() - 2.5).abs() < 1e-12);
        let odd = BenchResult {
            name: "o".into(),
            sample_means_ns: vec![3.0, 1.0, 2.0],
        };
        assert!((odd.median_ns() - 2.0).abs() < 1e-12);
    }
}
