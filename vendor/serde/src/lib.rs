//! Vendored stand-in for `serde`. The workspace only ever *derives*
//! `Serialize`/`Deserialize` to mark types as serialisable — no code path
//! actually serialises to a concrete format (the catalog's round-trip test
//! clones instead, precisely to avoid the dependency). So the traits here
//! are empty markers satisfied by every type, and the derive macros expand
//! to nothing while still accepting `#[serde(...)]` helper attributes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[derive(crate::Serialize, crate::Deserialize)]
    struct Marked {
        #[serde(skip)]
        _hidden: u8,
    }

    fn assert_marker<T: crate::Serialize + for<'de> crate::Deserialize<'de>>() {}

    #[test]
    fn derive_and_blanket_impls_compose() {
        assert_marker::<Marked>();
        assert_marker::<Vec<String>>();
    }
}
