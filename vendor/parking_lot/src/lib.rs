//! Vendored stand-in for `parking_lot`, backed by `std::sync` primitives.
//! Matches the `parking_lot` API shape the workspace uses: non-poisoning
//! `lock()`/`read()`/`write()` that return guards directly.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error: a panic while holding
/// the lock simply passes the data on, exactly like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
