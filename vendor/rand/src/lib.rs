//! Vendored, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses. The build environment has no registry access, so instead
//! of the real `rand` we ship a small deterministic PRNG with the same API
//! surface: `rngs::StdRng`, `SeedableRng::seed_from_u64`, the `RngExt`
//! extension trait (`random`, `random_range`, `random_bool`) and
//! `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — statistically solid
//! for simulation workloads and fully deterministic across platforms, which
//! is exactly what the reproduction needs. It makes no cryptographic claims.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Minimal core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly distributed `f32` in `[0, 1)` with 24 bits of precision.
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a range (the subset of
/// `rand::distr::uniform::SampleUniform` the workspace needs).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "cannot sample from empty range {lo}..{hi}");
                // Modulo reduction: the bias for spans ≪ 2^64 is negligible
                // for the simulation workloads in this repository.
                (lo_w + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_sample_uniform_float {
    ($t:ty, $next:ident) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "cannot sample from inverted range");
                lo + rng.$next() * (hi - lo)
            }
        }
    };
}

impl_sample_uniform_float!(f64, next_f64);
impl_sample_uniform_float!(f32, next_f32);

/// Ranges a value can be drawn from (`lo..hi` and `lo..=hi`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Types with a canonical "just give me one" distribution (`random()`):
/// floats uniform in `[0, 1)`, integers over their whole domain, fair bools.
pub trait StandardDistributed {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDistributed for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl StandardDistributed for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f32()
    }
}

impl StandardDistributed for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardDistributed for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Extension methods on any generator (the `rand` 0.9+ spelling).
pub trait RngExt: RngCore {
    fn random<T: StandardDistributed>(&mut self) -> T {
        T::standard(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias kept so `use rand::Rng` also works against this stub.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let u: usize = rng.random_range(0..3);
            assert!(u < 3);
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..4096 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
