//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
///
/// Not cryptographically secure — and not the same stream as upstream
/// `StdRng` — but every consumer in this workspace only relies on
/// *determinism per seed*, which this provides on every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
