//! Sequence helpers (`shuffle`, `choose`).

use crate::{RngCore, RngExt};

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j: usize = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
