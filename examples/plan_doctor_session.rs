//! Anatomy of one plan-doctor episode: reproduces the paper's motivating
//! example (§I: JOB query 1b) on our substrate — show a query where the
//! expert mis-costs a join, then walk the `Swap` / `Override` repairs and
//! print how the true latency responds at each step.
//!
//! ```sh
//! cargo run --release --example plan_doctor_session
//! ```

use foss_repro::core::actions::{Action, ActionSpace};
use foss_repro::prelude::*;

fn main() -> Result<()> {
    let wl = joblite::build(WorkloadSpec {
        seed: 7,
        scale: 0.15,
    })?;
    let executor = CachingExecutor::new(wl.db.clone(), *wl.optimizer.cost_model());

    // Find the training query where manual doctoring helps the most.
    let mut best_demo: Option<(usize, f64, f64)> = None;
    for (qi, query) in wl.train.iter().enumerate().take(40) {
        let original = wl.optimizer.optimize(query)?;
        let orig_lat = executor.execute(query, &original, None)?.latency;
        let icp = original.extract_icp()?;
        // One-step overrides of every join method.
        for i in 1..=icp.join_count() {
            for j in 1..=3 {
                let mut cand = icp.clone();
                if cand.override_method(i, j).is_err() {
                    continue;
                }
                let plan = wl.optimizer.optimize_with_hint(query, &cand)?;
                let lat = executor.execute(query, &plan, None)?.latency;
                if best_demo.is_none_or(|(_, o, b)| lat / orig_lat < b / o) {
                    best_demo = Some((qi, orig_lat, lat));
                }
            }
        }
    }
    let (qi, orig_lat, _) = best_demo.expect("some query benefits from doctoring");
    let query = &wl.train[qi];
    println!("query (template {}): {}", query.template, query);

    let original = wl.optimizer.optimize(query)?;
    println!(
        "\nexpert plan ({} relations):\n{}",
        query.relation_count(),
        original.explain()
    );
    println!("expert true latency: {orig_lat:.0} work units");
    println!(
        "expert estimated cost: {:.0} (the gap is the estimation error FOSS exploits)",
        original.est_cost()
    );

    // Greedy manual doctoring for up to three steps, like the paper's 1b
    // walk-through (override the join method, then fix the order).
    let space = ActionSpace::new(query.relation_count().max(2));
    let mut icp = original.extract_icp()?;
    let mut last_swap = None;
    let mut current_lat = orig_lat;
    for step in 1..=3 {
        let mask = space.mask(query, &icp, last_swap);
        let mut best: Option<(Action, f64)> = None;
        for (a, &allowed) in mask.iter().enumerate() {
            if !allowed {
                continue;
            }
            let action = space.decode(a);
            let mut cand = icp.clone();
            space.apply(action, &mut cand)?;
            let plan = wl.optimizer.optimize_with_hint(query, &cand)?;
            let lat = executor.execute(query, &plan, None)?.latency;
            if best.is_none_or(|(_, b)| lat < b) {
                best = Some((action, lat));
            }
        }
        let Some((action, lat)) = best else { break };
        if lat >= current_lat {
            println!("\nstep {step}: no action improves further — stopping");
            break;
        }
        space.apply(action, &mut icp)?;
        last_swap = foss_repro::core::actions::as_swap(action);
        println!(
            "\nstep {step}: {action:?} → latency {lat:.0} ({:.2}x vs expert)",
            orig_lat / lat
        );
        current_lat = lat;
    }
    let final_plan = wl.optimizer.optimize_with_hint(query, &icp)?;
    println!("\nfinal doctored plan:\n{}", final_plan.explain());
    println!("total improvement: {:.2}x", orig_lat / current_lat);
    Ok(())
}
