//! The asymmetric advantage model in isolation: collect latency-labelled
//! plan pairs on Stack-lite, train the AAM, and inspect its selector
//! behaviour and confusion matrix — the machinery behind the paper's §IV.
//!
//! ```sh
//! cargo run --release --example aam_playground
//! ```

use foss_repro::core::aam::AdvantageModel;
use foss_repro::core::advantage::AdvantageScale;
use foss_repro::core::encoding::PlanEncoder;
use foss_repro::prelude::*;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, RngExt, SeedableRng};

fn main() -> Result<()> {
    let wl = stacklite::build(WorkloadSpec {
        seed: 11,
        scale: 0.12,
    })?;
    let executor = CachingExecutor::new(wl.db.clone(), *wl.optimizer.cost_model());
    let encoder = PlanEncoder::new(wl.table_count(), wl.table_rows());
    let scale = AdvantageScale::paper_default();
    let mut rng = StdRng::seed_from_u64(3);

    // Collect pairs: expert plan + random one-step doctored mutations.
    println!("collecting latency-labelled plan pairs...");
    let mut samples = Vec::new();
    for query in wl.train.iter().take(40) {
        let original = wl.optimizer.optimize(query)?;
        let orig_lat = executor.execute(query, &original, None)?.latency;
        let orig_enc = encoder.encode(query, &original, 0.0);
        let icp = original.extract_icp()?;
        let mut variants = Vec::new();
        for i in 1..=icp.join_count() {
            for j in 1..=3 {
                let mut cand = icp.clone();
                if cand.override_method(i, j).is_ok() && cand != icp {
                    variants.push(cand);
                }
            }
        }
        variants.shuffle(&mut rng);
        for cand in variants.into_iter().take(4) {
            let plan = wl.optimizer.optimize_with_hint(query, &cand)?;
            let lat = match executor.execute(query, &plan, Some(orig_lat * 3.0)) {
                Ok(o) => o.latency,
                Err(FossError::Timeout { .. }) => orig_lat * 3.0,
                Err(e) => return Err(e),
            };
            let enc = encoder.encode(query, &plan, 1.0 / 3.0);
            samples.push((
                orig_enc.clone(),
                enc.clone(),
                scale.score_latencies(orig_lat, lat),
            ));
            samples.push((enc, orig_enc.clone(), scale.score_latencies(lat, orig_lat)));
        }
    }
    let label_counts = (0..3)
        .map(|k| samples.iter().filter(|s| s.2 == k).count())
        .collect::<Vec<_>>();
    println!(
        "{} pairs (labels 0/1/2 = {:?}) — skewed toward 0, as §IV-C expects",
        samples.len(),
        label_counts
    );

    // Train.
    let mut aam = AdvantageModel::new(wl.table_count() + 1, &FossConfig::tiny(), &mut rng);
    let split = samples.len() * 4 / 5;
    let (train, test) = samples.split_at(split);
    for epoch in 1..=12 {
        let loss = aam.train_epoch(train, &mut rng);
        if epoch % 3 == 0 {
            println!(
                "epoch {epoch:2}: loss={loss:.4} train_acc={:.2} held_out_acc={:.2}",
                aam.accuracy(train),
                aam.accuracy(test)
            );
        }
    }

    // Confusion matrix on the held-out pairs.
    let mut confusion = [[0usize; 3]; 3];
    for (l, r, y) in test {
        confusion[*y][aam.predict(l, r)] += 1;
    }
    println!("\nheld-out confusion matrix (rows = truth, cols = predicted):");
    for (k, row) in confusion.iter().enumerate() {
        println!("  true {k}: {row:?}");
    }

    // Selector demo: champion tournament over a few candidates.
    let query = &wl.train[0];
    let original = wl.optimizer.optimize(query)?;
    let mut candidates = vec![encoder.encode(query, &original, 0.0)];
    let icp = original.extract_icp()?;
    for j in 1..=3 {
        let mut cand = icp.clone();
        if cand.override_method(1, j).is_ok() {
            let plan = wl.optimizer.optimize_with_hint(query, &cand)?;
            candidates.push(encoder.encode(query, &plan, 1.0 / 3.0));
        }
    }
    let refs: Vec<&_> = candidates.iter().collect();
    let winner = foss_repro::core::select_best(&aam, &refs);
    println!(
        "\nselector picked candidate {winner} of {}",
        candidates.len()
    );
    let _ = rng.random_range(0..2);
    Ok(())
}
