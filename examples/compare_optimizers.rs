//! Head-to-head of all six systems on one benchmark — a one-workload
//! miniature of the paper's Table I.
//!
//! ```sh
//! cargo run --release --example compare_optimizers -- tpcdslite
//! ```

use foss_repro::prelude::*;

fn main() -> Result<()> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tpcdslite".into());
    let mut cfg = foss_repro::harness::table1::RunConfig::smoke();
    cfg.spec.scale = 0.12;
    cfg.baseline_rounds = 2;
    cfg.foss_iterations = 2;
    cfg.foss_episodes = 40;
    eprintln!("running {name} with {cfg:?} ...");
    let table = foss_repro::harness::table1::run_workload(&name, &cfg)?;
    println!(
        "{}",
        foss_repro::harness::table1::render(std::slice::from_ref(&table))
    );
    println!("{}", foss_repro::harness::table1::render_fig4(&[table]));
    Ok(())
}
