//! Full FOSS training run on JOB-lite with per-iteration diagnostics and a
//! final train/test evaluation — a miniature of the paper's Fig. 5 loop.
//!
//! ```sh
//! FOSS_ITERS=5 cargo run --release --example train_foss_joblite
//! ```

use foss_repro::prelude::*;

fn main() -> Result<()> {
    let iters: usize = std::env::var("FOSS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let wl = joblite::build(WorkloadSpec {
        seed: 42,
        scale: 0.12,
    })?;
    let exp_executor = std::sync::Arc::new(CachingExecutor::new(
        wl.db.clone(),
        *wl.optimizer.cost_model(),
    ));
    let cfg = FossConfig {
        episodes_per_update: 90,
        promising_per_update: 12,
        random_validation_per_update: 4,
        ..FossConfig::tiny()
    };
    let mut foss = Foss::new(
        wl.optimizer.clone(),
        exp_executor.clone(),
        wl.max_relations,
        wl.table_rows(),
        cfg,
    );

    println!(
        "bootstrap: executing expert + doctored candidates for {} queries",
        wl.train.len()
    );
    let report = foss.bootstrap(&wl.train, 1)?;
    println!(
        "  buffer={} plans, {} real executions, AAM loss {:.3} acc {:.2}",
        report.buffer_plans, report.plans_executed, report.aam_loss, report.aam_accuracy
    );

    for i in 1..=iters {
        let report = foss.train_iteration(&wl.train, i)?;
        // Evaluate on the test split after each iteration.
        let (mut learned, mut expert) = (0.0, 0.0);
        for q in &wl.test {
            let plan = foss.optimize(q)?;
            let e = wl.optimizer.optimize(q)?;
            learned += exp_executor.execute(q, &plan, None)?.latency;
            expert += exp_executor.execute(q, &e, None)?.latency;
        }
        println!(
            "iter {i}: reward={:+.2} aam_loss={:.3} acc={:.2} buffer={} | test speedup {:.2}x",
            report.mean_reward,
            report.aam_loss,
            report.aam_accuracy,
            report.buffer_plans,
            expert / learned
        );
    }

    // Final per-split totals.
    for (name, queries) in [("train", &wl.train), ("test", &wl.test)] {
        let (mut learned, mut expert) = (0.0, 0.0);
        let mut wins = 0usize;
        for q in queries.iter() {
            let plan = foss.optimize(q)?;
            let e = wl.optimizer.optimize(q)?;
            let l = exp_executor.execute(q, &plan, None)?.latency;
            let x = exp_executor.execute(q, &e, None)?.latency;
            learned += l;
            expert += x;
            if l < x * 0.95 {
                wins += 1;
            }
        }
        println!(
            "{name}: total speedup {:.2}x over the expert; beat it on {wins}/{} queries",
            expert / learned,
            queries.len()
        );
    }
    Ok(())
}
