//! Quickstart: build a workload, let the expert plan a query, let FOSS
//! doctor that plan, and compare true latencies.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use foss_repro::prelude::*;

fn main() -> Result<()> {
    // 1. Materialise the JOB-lite benchmark (IMDb-shaped synthetic data).
    let spec = WorkloadSpec {
        seed: 42,
        scale: 0.15,
    };
    let wl = joblite::build(spec)?;
    println!(
        "JOB-lite: {} tables, {} train / {} test queries",
        wl.table_count(),
        wl.train.len(),
        wl.test.len()
    );

    // 2. Pick a query and show the expert's plan.
    let query = wl.train.iter().max_by_key(|q| q.relation_count()).unwrap();
    println!("\nquery (template {}): {}", query.template, query);
    let expert_plan = wl.optimizer.optimize(query)?;
    println!("\nexpert plan:\n{}", expert_plan.explain());

    // 3. Train FOSS briefly on the training workload.
    let executor = std::sync::Arc::new(CachingExecutor::new(
        wl.db.clone(),
        *wl.optimizer.cost_model(),
    ));
    let cfg = FossConfig {
        episodes_per_update: 60,
        ..FossConfig::tiny()
    };
    let mut foss = Foss::new(
        wl.optimizer.clone(),
        executor.clone(),
        wl.max_relations,
        wl.table_rows(),
        cfg,
    );
    println!("training FOSS (bootstrap + 2 iterations)...");
    for report in foss.train(&wl.train, 2)? {
        println!(
            "  iter {}: aam_loss={:.3} aam_acc={:.2} buffer={} executed={}",
            report.iteration,
            report.aam_loss,
            report.aam_accuracy,
            report.buffer_plans,
            report.plans_executed
        );
    }

    // 4. Doctor the plan and compare true latencies.
    let inference = foss.optimize_detailed(query)?;
    println!(
        "\nFOSS plan (selected at step {} of {}):\n{}",
        inference.selected_step,
        foss.config().max_steps,
        inference.plan.explain()
    );
    let expert_lat = executor.execute(query, &expert_plan, None)?.latency;
    let foss_lat = executor.execute(query, &inference.plan, None)?.latency;
    println!("expert latency: {expert_lat:.0} work units");
    println!(
        "FOSS latency:   {foss_lat:.0} work units ({:.2}x)",
        expert_lat / foss_lat
    );
    Ok(())
}
